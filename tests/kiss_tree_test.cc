#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "index/kiss_tree.h"
#include "util/rng.h"

namespace qppt {
namespace {

std::vector<uint64_t> Collect(const KissTree::ValueRef& ref) {
  std::vector<uint64_t> out;
  ref.ForEach([&](uint64_t v) { out.push_back(v); });
  return out;
}

// ---- CompactSlab ---------------------------------------------------------------

TEST(CompactSlabTest, HandlesResolveToDistinctMemory) {
  CompactSlab slab;
  std::vector<uint32_t> handles;
  for (int i = 0; i < 1000; ++i) {
    uint32_t h = slab.Allocate(24);
    ASSERT_NE(h, CompactSlab::kNullHandle);
    *static_cast<uint64_t*>(slab.Resolve(h)) = static_cast<uint64_t>(i);
    handles.push_back(h);
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(*static_cast<uint64_t*>(
                  slab.Resolve(handles[static_cast<size_t>(i)])),
              static_cast<uint64_t>(i));
  }
}

TEST(CompactSlabTest, SpansMultipleChunks) {
  CompactSlab slab;
  // 3000 x 1 KiB > 1 MiB chunk.
  std::vector<uint32_t> handles;
  for (int i = 0; i < 3000; ++i) handles.push_back(slab.Allocate(1024));
  EXPECT_GT(slab.bytes_reserved(), CompactSlab::kChunkBytes);
  // Handles remain valid across chunk growth.
  *static_cast<uint64_t*>(slab.Resolve(handles.front())) = 1;
  *static_cast<uint64_t*>(slab.Resolve(handles.back())) = 2;
  EXPECT_EQ(*static_cast<uint64_t*>(slab.Resolve(handles.front())), 1u);
}

// ---- KissTree: parameterized over compression and root width --------------------

struct KissParam {
  size_t root_bits;
  bool compress;
};

class KissTreeProperty : public ::testing::TestWithParam<KissParam> {
 protected:
  KissTree::Config ValuesConfig() const {
    return {.root_bits = GetParam().root_bits,
            .mode = KissTree::PayloadMode::kValues,
            .agg_payload_size = 0,
            .compress = GetParam().compress};
  }
};

TEST_P(KissTreeProperty, RandomUpsertLookupRoundTrip) {
  KissTree tree(ValuesConfig());
  Rng rng(1);
  std::map<uint32_t, uint64_t> reference;
  for (int i = 0; i < 20000; ++i) {
    uint32_t key = rng.Next32();
    uint64_t value = rng.Next() >> 1;
    tree.Upsert(key, value);
    reference[key] = value;
  }
  EXPECT_EQ(tree.num_keys(), reference.size());
  for (const auto& [key, value] : reference) {
    KissTree::ValueRef ref;
    ASSERT_TRUE(tree.Lookup(key, &ref)) << key;
    EXPECT_EQ(ref.front(), value);
    EXPECT_EQ(ref.size(), 1u);
  }
  for (int i = 0; i < 2000; ++i) {
    uint32_t key = rng.Next32();
    if (reference.count(key)) continue;
    EXPECT_FALSE(tree.Contains(key));
  }
}

TEST_P(KissTreeProperty, DuplicatesAccumulate) {
  KissTree tree(ValuesConfig());
  std::multiset<uint64_t> expected;
  for (uint64_t i = 0; i < 500; ++i) {
    tree.Insert(12345, i);
    expected.insert(i);
  }
  KissTree::ValueRef ref;
  ASSERT_TRUE(tree.Lookup(12345, &ref));
  EXPECT_EQ(ref.size(), 500u);
  auto values = Collect(ref);
  std::multiset<uint64_t> actual(values.begin(), values.end());
  EXPECT_EQ(actual, expected);
  EXPECT_EQ(tree.num_keys(), 1u);
}

TEST_P(KissTreeProperty, ScanAllIsSortedAndComplete) {
  KissTree tree(ValuesConfig());
  Rng rng(2);
  std::set<uint32_t> reference;
  for (int i = 0; i < 10000; ++i) {
    // Bounded key range: a scan's cost is proportional to the root span
    // between min and max key, so full-range random keys would make this
    // test do 2^26 bucket probes per scan.
    uint32_t key = rng.Next32() % (1u << 22);
    tree.Upsert(key, key);
    reference.insert(key);
  }
  std::vector<uint32_t> scanned;
  tree.ScanAll([&](uint32_t key, const KissTree::ValueRef& ref) {
    scanned.push_back(key);
    EXPECT_EQ(ref.front(), key);
  });
  ASSERT_EQ(scanned.size(), reference.size());
  auto it = reference.begin();
  for (size_t i = 0; i < scanned.size(); ++i, ++it) {
    EXPECT_EQ(scanned[i], *it);
  }
}

TEST_P(KissTreeProperty, RangeScanMatchesReference) {
  KissTree tree(ValuesConfig());
  Rng rng(3);
  std::set<uint32_t> reference;
  for (int i = 0; i < 5000; ++i) {
    uint32_t key = rng.Next32() % (1u << 22);  // bounded: see ScanAll test
    tree.Upsert(key, 1);
    reference.insert(key);
  }
  for (int trial = 0; trial < 20; ++trial) {
    uint32_t lo = rng.Next32() % (1u << 22);
    uint32_t hi = rng.Next32() % (1u << 22);
    if (lo > hi) std::swap(lo, hi);
    std::vector<uint32_t> expected;
    for (uint32_t k : reference) {
      if (k >= lo && k <= hi) expected.push_back(k);
    }
    std::vector<uint32_t> scanned;
    tree.ScanRange(lo, hi, [&](uint32_t key, const KissTree::ValueRef&) {
      scanned.push_back(key);
    });
    EXPECT_EQ(scanned, expected);
  }
}

TEST_P(KissTreeProperty, BatchLookupAgreesWithPointLookup) {
  KissTree tree(ValuesConfig());
  Rng rng(4);
  std::vector<uint32_t> keys;
  for (int i = 0; i < 5000; ++i) {
    uint32_t key = rng.Next32() % 10000;
    keys.push_back(key);
    if (i % 2 == 0) tree.Insert(key, static_cast<uint64_t>(i));
  }
  std::vector<KissTree::LookupJob> jobs(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) jobs[i].key = keys[i];
  tree.BatchLookup(jobs);
  for (size_t i = 0; i < keys.size(); ++i) {
    KissTree::ValueRef direct;
    bool found = tree.Lookup(keys[i], &direct);
    ASSERT_EQ(jobs[i].found, found) << keys[i];
    if (found) {
      EXPECT_EQ(jobs[i].values.size(), direct.size());
      EXPECT_EQ(jobs[i].values.front(), direct.front());
    }
  }
}

TEST_P(KissTreeProperty, BatchUpsertMatchesSequential) {
  KissTree a(ValuesConfig());
  KissTree b(ValuesConfig());
  Rng rng(5);
  std::vector<KissTree::UpsertJob> jobs;
  for (int i = 0; i < 5000; ++i) {
    jobs.push_back({rng.Next32() % 3000, rng.Next() >> 1});
  }
  for (const auto& j : jobs) a.Upsert(j.key, j.value);
  b.BatchUpsert(jobs);
  EXPECT_EQ(a.num_keys(), b.num_keys());
  a.ScanAll([&](uint32_t key, const KissTree::ValueRef& ref) {
    KissTree::ValueRef other;
    ASSERT_TRUE(b.Lookup(key, &other));
    EXPECT_EQ(ref.front(), other.front());
  });
}

TEST_P(KissTreeProperty, MinMaxTracked) {
  KissTree tree(ValuesConfig());
  tree.Insert(500, 1);
  tree.Insert(100, 1);
  tree.Insert(900, 1);
  EXPECT_EQ(tree.min_key(), 100u);
  EXPECT_EQ(tree.max_key(), 900u);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, KissTreeProperty,
    ::testing::Values(KissParam{26, false}, KissParam{26, true},
                      KissParam{20, false}, KissParam{16, false}),
    [](const ::testing::TestParamInfo<KissParam>& info) {
      return "root" + std::to_string(info.param.root_bits) +
             (info.param.compress ? "_compressed" : "_uncompressed");
    });

// ---- aggregate mode ---------------------------------------------------------------

TEST(KissTreeTest, AggregatePayloads) {
  KissTree tree({.root_bits = 20,
                 .mode = KissTree::PayloadMode::kAggregate,
                 .agg_payload_size = 16,
                 .compress = false});
  Rng rng(6);
  std::map<uint32_t, int64_t> reference;
  for (int i = 0; i < 10000; ++i) {
    uint32_t key = rng.Next32() % 256;  // few groups, many updates
    int64_t delta = rng.NextInRange(-100, 100);
    bool created = false;
    std::byte* p = tree.FindOrCreatePayload(key, &created);
    auto* acc = reinterpret_cast<int64_t*>(p);
    if (created) {
      acc[0] = 0;
      acc[1] = 0;
    }
    acc[0] += delta;
    acc[1] += 1;
    reference[key] += delta;
  }
  EXPECT_EQ(tree.num_keys(), reference.size());
  size_t visited = 0;
  uint32_t prev_key = 0;
  tree.ScanPayloads([&](uint32_t key, const std::byte* p) {
    if (visited > 0) {
      EXPECT_GT(key, prev_key);
    }
    prev_key = key;
    ++visited;
    EXPECT_EQ(reinterpret_cast<const int64_t*>(p)[0], reference.at(key));
  });
  EXPECT_EQ(visited, reference.size());
}

TEST(KissTreeTest, DenseSequentialKeysUncompressed) {
  // The dense case QPPT optimizes for by disabling compression (§2.2).
  KissTree tree({.root_bits = 20,
                 .mode = KissTree::PayloadMode::kValues,
                 .agg_payload_size = 0,
                 .compress = false});
  constexpr uint32_t kN = 100000;
  for (uint32_t i = 0; i < kN; ++i) tree.Upsert(i, i);
  EXPECT_EQ(tree.num_keys(), kN);
  uint32_t expected = 0;
  tree.ScanAll([&](uint32_t key, const KissTree::ValueRef& ref) {
    EXPECT_EQ(key, expected);
    EXPECT_EQ(ref.front(), expected);
    ++expected;
  });
  EXPECT_EQ(expected, kN);
}

TEST(KissTreeTest, CompressedUsesLessMemoryOnSparseKeys) {
  KissTree sparse_compressed({.root_bits = 26,
                              .mode = KissTree::PayloadMode::kValues,
                              .agg_payload_size = 0,
                              .compress = true});
  KissTree sparse_flat({.root_bits = 26,
                        .mode = KissTree::PayloadMode::kValues,
                        .agg_payload_size = 0,
                        .compress = false});
  Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    uint32_t key = rng.Next32();
    sparse_compressed.Upsert(key, 1);
    sparse_flat.Upsert(key, 1);
  }
  // One key per level-2 node on average: compression should win clearly
  // on slab bytes even counting RCU garbage.
  EXPECT_LT(sparse_compressed.MemoryUsage(), sparse_flat.MemoryUsage());
}

TEST(KissTreeTest, MoveTransfersOwnership) {
  KissTree a({.root_bits = 20,
              .mode = KissTree::PayloadMode::kValues,
              .agg_payload_size = 0,
              .compress = false});
  a.Insert(1, 10);
  KissTree b(std::move(a));
  KissTree::ValueRef ref;
  ASSERT_TRUE(b.Lookup(1, &ref));
  EXPECT_EQ(ref.front(), 10u);
}

}  // namespace
}  // namespace qppt
