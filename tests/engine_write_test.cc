// The engine write path end to end: WriteSession transactions against a
// versioned table, committed rows flowing into live base indexes, and
// snapshot-consistent OLAP reads racing the writers — the TSan target for
// the HTAP machinery (`ctest -L engine`).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "core/operators/selection.h"
#include "core/plan.h"
#include "engine/session.h"
#include "engine/write_session.h"
#include "obs/metrics.h"

namespace qppt {
namespace {

using engine::EngineConfig;
using engine::EngineRunner;
using engine::WriteSession;

constexpr int64_t kInitialRows = 64;

Schema ItemsSchema() {
  return Schema({{"k", ValueType::kInt64, nullptr},
                 {"v", ValueType::kInt64, nullptr}});
}

// A database with one versioned table "items" (kInitialRows committed
// rows: k = i, v = i) and a live KISS index "items_by_k" on k.
std::unique_ptr<Database> MakeDb() {
  auto db = std::make_unique<Database>();
  auto table = std::make_unique<MvccTable>(ItemsSchema(), "items");
  TransactionManager& tm = db->txn_manager();
  Transaction txn = tm.Begin();
  for (int64_t i = 0; i < kInitialRows; ++i) {
    uint64_t row[2] = {SlotFromInt64(i), SlotFromInt64(i)};
    table->Insert(txn, row);
  }
  Timestamp ts = tm.BeginCommit();
  table->CommitTransaction(txn, ts);
  tm.FinishCommit(txn, ts);
  EXPECT_TRUE(db->AddVersionedTable(std::move(table)).ok());
  BaseIndex::Options opt;
  opt.kiss_root_bits = 16;
  EXPECT_TRUE(db->BuildLiveIndex("items_by_k", "items", {"k"}, opt).ok());
  return db;
}

// SELECT k, v FROM items WHERE k BETWEEN lo AND hi (via the live index).
Plan RangePlan(int64_t lo, int64_t hi) {
  SelectionSpec sel;
  sel.input_index = "items_by_k";
  sel.predicate = KeyPredicate::Range(lo, hi);
  sel.carry_columns = {"k", "v"};
  sel.output = {"out", {"k"}, {}};
  Plan plan;
  plan.Emplace<SelectionOp>(sel);
  plan.set_result_slot("out");
  return plan;
}

TEST(WriteSessionTest, CommitMakesRowsVisibleToNewQueries) {
  auto db = MakeDb();
  EngineRunner engine(EngineConfig{.threads = 1});

  WriteSession ws = engine.OpenWriteSession(db.get());
  uint64_t row[2] = {SlotFromInt64(1000), SlotFromInt64(7)};
  auto id = ws.Insert("items", row);
  ASSERT_TRUE(id.ok());

  // Uncommitted: a fresh query must not see k=1000.
  auto before = engine.Execute(*db, RangePlan(1000, 1000), PlanKnobs{});
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->rows.size(), 0u);

  auto ts = ws.Commit();
  ASSERT_TRUE(ts.ok());
  EXPECT_FALSE(ws.active());

  auto after = engine.Execute(*db, RangePlan(1000, 1000), PlanKnobs{});
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after->rows.size(), 1u);
  EXPECT_EQ(after->rows[0][1], Value::Int(7));
  EXPECT_EQ(engine.write_stats().committed, 1u);
}

TEST(WriteSessionTest, PinnedSnapshotIgnoresLaterCommits) {
  auto db = MakeDb();
  EngineRunner engine(EngineConfig{.threads = 1});

  Timestamp before_ts = db->txn_manager().last_commit_ts();
  {
    WriteSession ws = engine.OpenWriteSession(db.get());
    uint64_t row[2] = {SlotFromInt64(2000), SlotFromInt64(1)};
    ASSERT_TRUE(ws.Insert("items", row).ok());
    ASSERT_TRUE(ws.Commit().ok());
  }

  // A query pinned BEFORE the commit misses the row; the default pin
  // (latest at admission) sees it.
  PlanKnobs pinned;
  pinned.read_ts = before_ts;
  auto old_snap = engine.Execute(*db, RangePlan(2000, 2000), pinned);
  ASSERT_TRUE(old_snap.ok());
  EXPECT_EQ(old_snap->rows.size(), 0u);

  PlanStats stats;
  auto latest = engine.Execute(*db, RangePlan(2000, 2000), PlanKnobs{},
                               &stats);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->rows.size(), 1u);
  EXPECT_EQ(stats.read_ts, before_ts + 1);
}

TEST(WriteSessionTest, UpdateReplacesRowInQueryResults) {
  auto db = MakeDb();
  EngineRunner engine(EngineConfig{.threads = 1});

  {
    WriteSession ws = engine.OpenWriteSession(db.get());
    uint64_t row[2] = {SlotFromInt64(3), SlotFromInt64(333)};
    ASSERT_TRUE(ws.Update("items", /*id=*/3, row).ok());
    ASSERT_TRUE(ws.Commit().ok());
  }

  // Both physical versions of k=3 are in the live index; only the new
  // one is visible.
  auto result = engine.Execute(*db, RangePlan(3, 3), PlanKnobs{});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][1], Value::Int(333));
}

TEST(WriteSessionTest, DeleteHidesRowFromQueries) {
  auto db = MakeDb();
  EngineRunner engine(EngineConfig{.threads = 1});

  {
    WriteSession ws = engine.OpenWriteSession(db.get());
    ASSERT_TRUE(ws.Delete("items", /*id=*/5).ok());
    ASSERT_TRUE(ws.Commit().ok());
  }
  auto result = engine.Execute(*db, RangePlan(5, 5), PlanKnobs{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 0u);

  // The full scan loses exactly that one row.
  auto all = engine.Execute(*db, RangePlan(0, kInitialRows - 1), PlanKnobs{});
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->rows.size(), static_cast<size_t>(kInitialRows - 1));
}

TEST(WriteSessionTest, AbortLeavesNoTrace) {
  auto db = MakeDb();
  EngineRunner engine(EngineConfig{.threads = 1});

  {
    WriteSession ws = engine.OpenWriteSession(db.get());
    uint64_t row[2] = {SlotFromInt64(4000), SlotFromInt64(1)};
    ASSERT_TRUE(ws.Insert("items", row).ok());
    uint64_t upd[2] = {SlotFromInt64(1), SlotFromInt64(111)};
    ASSERT_TRUE(ws.Update("items", /*id=*/1, upd).ok());
    ASSERT_TRUE(ws.Abort().ok());
  }
  // Destructor-abort path: session dropped while active.
  {
    WriteSession ws = engine.OpenWriteSession(db.get());
    uint64_t row[2] = {SlotFromInt64(4001), SlotFromInt64(1)};
    ASSERT_TRUE(ws.Insert("items", row).ok());
  }
  EXPECT_EQ(engine.write_stats().aborted, 2u);

  auto result = engine.Execute(*db, RangePlan(0, 5000), PlanKnobs{});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), static_cast<size_t>(kInitialRows));
  for (const auto& r : result->rows) {
    EXPECT_EQ(r[0], r[1]);  // k == v everywhere: the update never landed
  }
}

TEST(WriteSessionTest, FirstUpdaterWinsAcrossSessions) {
  auto db = MakeDb();
  EngineRunner engine(EngineConfig{.threads = 1});

  WriteSession first = engine.OpenWriteSession(db.get());
  WriteSession second = engine.OpenWriteSession(db.get());
  uint64_t row[2] = {SlotFromInt64(2), SlotFromInt64(222)};
  ASSERT_TRUE(first.Update("items", /*id=*/2, row).ok());
  EXPECT_EQ(second.Update("items", /*id=*/2, row).code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE(first.Commit().ok());
  ASSERT_TRUE(second.Abort().ok());

  auto result = engine.Execute(*db, RangePlan(2, 2), PlanKnobs{});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][1], Value::Int(222));
}

TEST(WriteSessionTest, ReclaimRespectsInFlightSnapshots) {
  auto db = MakeDb();
  EngineRunner engine(EngineConfig{.threads = 1});

  for (int64_t i = 0; i < 10; ++i) {
    WriteSession ws = engine.OpenWriteSession(db.get());
    uint64_t row[2] = {SlotFromInt64(0), SlotFromInt64(100 + i)};
    ASSERT_TRUE(ws.Update("items", /*id=*/0, row).ok());
    ASSERT_TRUE(ws.Commit().ok());
  }
  // No query in flight: the horizon is the latest commit, so the 10
  // superseded versions of row 0 unlink.
  EXPECT_EQ(engine.ReclaimVersions(db.get()), 10u);
  EXPECT_EQ(engine.ReclaimVersions(db.get()), 0u);

  // Queries still read the surviving version.
  auto result = engine.Execute(*db, RangePlan(0, 0), PlanKnobs{});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][1], Value::Int(109));
}

// The write path reports into the global metrics registry (ISSUE 7):
// commit/abort/conflict counters, live-index upserts, version
// reclamation, and the version-chain-length histogram must all move
// when the corresponding MVCC events happen. Deltas, not absolutes —
// the registry is process-wide and other tests also write to it.
TEST(WriteSessionTest, HtapMetricsCountTheWorkload) {
  auto& reg = obs::MetricsRegistry::Global();
  obs::MetricsSnapshot before = reg.Snapshot();

  auto db = MakeDb();
  EngineRunner engine(EngineConfig{.threads = 1});
  {
    WriteSession ws = engine.OpenWriteSession(db.get());
    uint64_t row[2] = {SlotFromInt64(9000), SlotFromInt64(1)};
    ASSERT_TRUE(ws.Insert("items", row).ok());
    ASSERT_TRUE(ws.Commit().ok());
  }
  {
    WriteSession first = engine.OpenWriteSession(db.get());
    WriteSession second = engine.OpenWriteSession(db.get());
    uint64_t row[2] = {SlotFromInt64(2), SlotFromInt64(222)};
    ASSERT_TRUE(first.Update("items", /*id=*/2, row).ok());
    EXPECT_EQ(second.Update("items", /*id=*/2, row).code(),
              StatusCode::kAlreadyExists);
    ASSERT_TRUE(first.Commit().ok());
    ASSERT_TRUE(second.Abort().ok());
  }
  size_t reclaimed = engine.ReclaimVersions(db.get());
  EXPECT_EQ(reclaimed, 1u);  // the superseded version of row 2

  obs::MetricsSnapshot after = reg.Snapshot();
  auto delta = [&](std::string_view name) {
    return after.CounterValue(name) - before.CounterValue(name);
  };
  EXPECT_EQ(delta("engine_txns_begun_total"), 3u);
  EXPECT_EQ(delta("engine_txns_committed_total"), 2u);
  EXPECT_EQ(delta("engine_txns_aborted_total"), 1u);
  EXPECT_EQ(delta("engine_first_updater_conflicts_total"), 1u);
  // Insert + update each published one row into the one live index.
  EXPECT_EQ(delta("engine_live_index_upserts_total"), 2u);
  EXPECT_EQ(delta("engine_versions_reclaimed_total"), 1u);

  const obs::MetricValue* publish = after.Find("engine_commit_publish_ms");
  ASSERT_NE(publish, nullptr);
  EXPECT_GE(publish->count, 2u);
  // The reclaim sweep walked every logical row's chain into the
  // histogram (ReclaimVersions observes chain lengths before unlinking).
  const obs::MetricValue* chains_b = before.Find("engine_version_chain_length");
  const obs::MetricValue* chains_a = after.Find("engine_version_chain_length");
  ASSERT_NE(chains_a, nullptr);
  uint64_t chains_before = chains_b != nullptr ? chains_b->count : 0;
  EXPECT_GE(chains_a->count - chains_before,
            static_cast<uint64_t>(kInitialRows));
}

// The HTAP race, end to end: one writer thread committing transactions
// (each inserts a batch AND updates row 0) while reader threads run OLAP
// selections through the engine. Every query's result must be exactly
// consistent with its pinned snapshot: commit number c (1-based) adds
// kBatch rows and sets row 0's v to c, so a snapshot at base_ts + c must
// see kInitialRows + c*kBatch rows and v(k=0) == c. TSan target.
TEST(WriteSessionTest, ConcurrentWritersAndSnapshotReaders) {
  auto db = MakeDb();
  // Deliberately oversubscribe tiny CI machines: interleavings matter
  // more than throughput here.
  EngineRunner engine(
      EngineConfig{.threads = 2, .clamp_threads_to_hardware = false});

  constexpr int64_t kCommits = 60;
  constexpr int64_t kBatch = 8;
  const Timestamp base_ts = db->txn_manager().last_commit_ts();

  std::atomic<bool> done{false};
  std::thread writer([&] {
    // Inner lambda so a failed ASSERT still reaches the done-store and
    // the readers terminate instead of spinning.
    [&] {
      for (int64_t c = 1; c <= kCommits; ++c) {
        WriteSession ws = engine.OpenWriteSession(db.get());
        for (int64_t j = 0; j < kBatch; ++j) {
          int64_t k = kInitialRows + (c - 1) * kBatch + j;
          uint64_t row[2] = {SlotFromInt64(k), SlotFromInt64(k)};
          ASSERT_TRUE(ws.Insert("items", row).ok());
        }
        uint64_t head[2] = {SlotFromInt64(0), SlotFromInt64(c)};
        ASSERT_TRUE(ws.Update("items", /*id=*/0, head).ok());
        ASSERT_TRUE(ws.Commit().ok());
      }
    }();
    done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      Plan scan = RangePlan(0, kInitialRows + kCommits * kBatch);
      while (!done.load(std::memory_order_acquire)) {
        PlanStats stats;
        auto result = engine.Execute(*db, scan, PlanKnobs{}, &stats);
        ASSERT_TRUE(result.ok());
        ASSERT_GE(stats.read_ts, base_ts);
        int64_t c = static_cast<int64_t>(stats.read_ts - base_ts);
        ASSERT_EQ(result->rows.size(),
                  static_cast<size_t>(kInitialRows + c * kBatch));
        // Row 0 tracks the commit counter exactly.
        bool found = false;
        for (const auto& row : result->rows) {
          if (row[0] == Value::Int(0)) {
            EXPECT_EQ(row[1], Value::Int(c));
            found = true;
            break;
          }
        }
        EXPECT_TRUE(found);
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();

  // Quiesced identity check: re-running at the final snapshot matches.
  PlanStats stats;
  auto final_result = engine.Execute(
      *db, RangePlan(0, kInitialRows + kCommits * kBatch), PlanKnobs{},
      &stats);
  ASSERT_TRUE(final_result.ok());
  EXPECT_EQ(stats.read_ts, base_ts + kCommits);
  EXPECT_EQ(final_result->rows.size(),
            static_cast<size_t>(kInitialRows + kCommits * kBatch));
  EXPECT_EQ(engine.write_stats().committed,
            static_cast<uint64_t>(kCommits));
}

}  // namespace
}  // namespace qppt
