// Golden planner tests (ISSUE 3): for every SSB query across the knob
// grid (select-join fusion on/off x join-ways 2/3/4/multi) the rule-based
// planner must emit exactly the operator sequences the hand-built plans
// produced before the redesign — recorded below as literal golden data —
// and the executed results must be identical across the whole grid.
// Where the pre-redesign code varied with a knob (Q1.x fusion, Q4.1
// join-ways), the golden sequences are the pre-redesign ones verbatim;
// the remaining chains are the planner's uniform arity rule applied to
// queries the hand-built code never split.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/query/planner.h"
#include "engine/session.h"
#include "ssb/queries_qppt.h"

namespace qppt::ssb {
namespace {

class PlannerGoldenTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SsbConfig cfg;
    cfg.scale_factor = 0.01;  // scale-mini: ~60k lineorder rows
    cfg.seed = 7;
    auto data = Generate(cfg);
    ASSERT_TRUE(data.ok());
    data_ = data->release();
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }

  static SsbData* data_;
};

SsbData* PlannerGoldenTest::data_ = nullptr;

struct KnobConfig {
  bool fusion;
  int ways;  // 0 = multi
};

const KnobConfig kGrid[] = {{true, 2},  {true, 3},  {true, 4},  {true, 0},
                            {false, 2}, {false, 3}, {false, 4}, {false, 0}};

std::string ConfigLabel(const KnobConfig& c) {
  return std::string(c.fusion ? "fusion" : "nofusion") + "/ways=" +
         (c.ways == 0 ? "multi" : std::to_string(c.ways));
}

// The golden operator-name sequences. Literal data, not derived from the
// planner: Q1.x and Q4.1 are the pre-redesign hand-built sequences for
// every knob setting; Q2/Q3/Q4.2/Q4.3 are the pre-redesign sequences at
// their composed arity plus the uniform chain expansion below the cap.
std::vector<std::string> GoldenSequence(const std::string& id, bool fusion,
                                        int ways) {
  if (id[0] == '1') {
    std::string date_sel =
        id == "1.2" ? "selection(d_yearmonthnum)" : "selection(d_year)";
    if (fusion) {
      return {date_sel, "2-way-select-join(lo_discount x date_sel)"};
    }
    return {date_sel, "selection(lo_discount)",
            "2-way-join(lo_sel x date_sel)"};
  }
  if (id[0] == '2') {
    std::vector<std::string> ops = {
        id == "2.1" ? "selection(p_category)" : "selection(p_brand1)",
        "selection(s_region)"};
    if (ways == 2) {
      ops.push_back("2-way-join(lo_partkey x part_sel)");
      ops.push_back("2-way-join(join1 x supp_sel)");
      ops.push_back("2-way-join(join2 x d_datekey)");
    } else {
      ops.push_back("3-way-join(lo_partkey x part_sel)");
      ops.push_back("2-way-join(join1 x d_datekey)");
    }
    return ops;
  }
  if (id[0] == '3') {
    std::vector<std::string> ops;
    if (id == "3.1") {
      ops = {"selection(c_region)", "selection(s_region)",
             "selection(d_year)"};
    } else if (id == "3.2") {
      ops = {"selection(c_nation)", "selection(s_nation)",
             "selection(d_year)"};
    } else if (id == "3.3") {
      ops = {"selection(c_city)", "selection(s_city)", "selection(d_year)"};
    } else {
      ops = {"selection(c_city)", "selection(s_city)",
             "selection(d_yearmonthnum)"};
    }
    if (ways == 2) {
      ops.push_back("2-way-join(lo_custkey x cust_sel)");
      ops.push_back("2-way-join(join1 x supp_sel)");
      ops.push_back("2-way-join(join2 x date_sel)");
    } else if (ways == 3) {
      ops.push_back("3-way-join(lo_custkey x cust_sel)");
      ops.push_back("2-way-join(join1 x date_sel)");
    } else {
      ops.push_back("4-way-join(lo_custkey x cust_sel)");
    }
    return ops;
  }
  // Q4.x: only Q4.1 probes the date base index directly; 4.2/4.3 filter
  // the date dimension into a selection slot.
  std::vector<std::string> ops;
  std::string date_side = "date_sel";
  if (id == "4.1") {
    ops = {"selection(c_region)", "selection(s_region)", "selection(p_mfgr)"};
    date_side = "d_datekey";
  } else if (id == "4.2") {
    ops = {"selection(c_region)", "selection(s_region)", "selection(p_mfgr)",
           "selection(d_year)"};
  } else {
    ops = {"selection(c_region)", "selection(s_nation)",
           "selection(p_category)", "selection(d_year)"};
  }
  if (ways == 2) {
    ops.push_back("2-way-join(lo_custkey x cust_sel)");
    ops.push_back("2-way-join(join1 x supp_sel)");
    ops.push_back("2-way-join(join2 x part_sel)");
    ops.push_back("2-way-join(join3 x " + date_side + ")");
  } else if (ways == 3) {
    ops.push_back("3-way-join(lo_custkey x cust_sel)");
    ops.push_back("2-way-join(join1 x part_sel)");
    ops.push_back("2-way-join(join2 x " + date_side + ")");
  } else if (ways == 4) {
    ops.push_back("4-way-join(lo_custkey x cust_sel)");
    ops.push_back("2-way-join(join1 x " + date_side + ")");
  } else {
    ops.push_back("5-way-join(lo_custkey x cust_sel)");
  }
  return ops;
}

TEST_F(PlannerGoldenTest, OperatorSequencesMatchGolden) {
  for (const auto& id : AllQueryIds()) {
    for (const KnobConfig& config : kGrid) {
      PlanKnobs knobs;
      knobs.use_select_join = config.fusion;
      knobs.max_join_ways = config.ways;
      auto plan = BuildQpptPlan(*data_, id, knobs);
      ASSERT_TRUE(plan.ok()) << "Q" << id << " " << ConfigLabel(config)
                             << ": " << plan.status();
      EXPECT_EQ(plan->OperatorNames(), GoldenSequence(id, config.fusion,
                                                      config.ways))
          << "Q" << id << " " << ConfigLabel(config);
    }
  }
}

TEST_F(PlannerGoldenTest, ResultsIdenticalAcrossKnobGrid) {
  for (const auto& id : AllQueryIds()) {
    auto reference = RunQppt(*data_, id, PlanKnobs{});
    ASSERT_TRUE(reference.ok()) << "Q" << id << ": " << reference.status();
    for (const KnobConfig& config : kGrid) {
      PlanKnobs knobs;
      knobs.use_select_join = config.fusion;
      knobs.max_join_ways = config.ways;
      auto got = RunQppt(*data_, id, knobs);
      ASSERT_TRUE(got.ok()) << "Q" << id << " " << ConfigLabel(config);
      ASSERT_EQ(got->rows.size(), reference->rows.size())
          << "Q" << id << " " << ConfigLabel(config);
      for (size_t r = 0; r < reference->rows.size(); ++r) {
        ASSERT_EQ(got->rows[r], reference->rows[r])
            << "Q" << id << " " << ConfigLabel(config) << " row " << r;
      }
    }
  }
}

TEST_F(PlannerGoldenTest, ExplainLinesUpWithExecutedStats) {
  PlanKnobs knobs;
  auto spec = BuildQuerySpec(*data_, "2.1");
  ASSERT_TRUE(spec.ok());
  auto explain = query::ExplainPlan(data_->db, *spec, knobs);
  ASSERT_TRUE(explain.ok());
  auto plan = query::PlanQuery(data_->db, *spec, knobs);
  ASSERT_TRUE(plan.ok());

  PlanStats stats;
  {
    ExecContext ctx(&data_->db, knobs);
    auto result = plan->Execute(&ctx);
    ASSERT_TRUE(result.ok());
    stats = *ctx.stats();
  }
  std::vector<std::string> labels = plan->OperatorLabels();
  ASSERT_EQ(stats.operators.size(), labels.size());
  for (size_t i = 0; i < labels.size(); ++i) {
    // Executed stats rows carry exactly the planner's stage names...
    EXPECT_EQ(stats.operators[i].name, labels[i]) << "stage " << i;
    // ...and every stage name appears as an ExplainPlan line.
    EXPECT_NE(explain->find("  " + labels[i]), std::string::npos)
        << *explain << "missing " << labels[i];
  }
  EXPECT_NE(explain->find("order-by: index order (free)"), std::string::npos)
      << *explain;

  // Q3.1's revenue-desc ORDER BY is the one the index cannot provide.
  auto spec3 = BuildQuerySpec(*data_, "3.1");
  ASSERT_TRUE(spec3.ok());
  auto explain3 = query::ExplainPlan(data_->db, *spec3, knobs);
  ASSERT_TRUE(explain3.ok());
  EXPECT_NE(explain3->find("post-sort(d_year asc, revenue desc)"),
            std::string::npos)
      << *explain3;
}

TEST_F(PlannerGoldenTest, PreparedExecutionMatchesAdHoc) {
  engine::EngineConfig cfg;
  cfg.threads = 2;
  cfg.clamp_threads_to_hardware = false;  // tiny CI boxes
  engine::EngineRunner runner(cfg);
  for (const auto& id : AllQueryIds()) {
    auto reference = RunQppt(*data_, id, PlanKnobs{});
    ASSERT_TRUE(reference.ok());
    auto spec = BuildQuerySpec(*data_, id);
    ASSERT_TRUE(spec.ok());
    auto prepared = runner.Prepare(data_->db, std::move(*spec));
    ASSERT_TRUE(prepared.ok()) << "Q" << id << ": " << prepared.status();
    for (int round = 0; round < 2; ++round) {
      auto got = runner.Execute(*prepared);
      ASSERT_TRUE(got.ok()) << "Q" << id;
      ASSERT_EQ(got->rows.size(), reference->rows.size()) << "Q" << id;
      for (size_t r = 0; r < reference->rows.size(); ++r) {
        ASSERT_EQ(got->rows[r], reference->rows[r]) << "Q" << id;
      }
    }
    // Prepare warmed the cache; both executions hit it.
    EXPECT_EQ(prepared->plan_cache_hits(), 2u) << "Q" << id;
    EXPECT_EQ(prepared->plan_cache_misses(), 1u) << "Q" << id;
  }
}

}  // namespace
}  // namespace qppt::ssb
