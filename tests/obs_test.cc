// Observability units (ISSUE 7): MetricsRegistry shard folding and
// exposition formats, histogram bucketing, snapshot consistency under
// concurrent writers (TSan-checked by the engine CI job), QueryTrace
// span recording + chrome://tracing JSON well-formedness, and the
// WorkerPool per-site tuner LRU bound.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/scheduler.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace qppt::obs {
namespace {

// ---- Counter / Gauge ---------------------------------------------------------

TEST(CounterTest, FoldsShards) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  for (size_t shard = 0; shard < kMetricShards; ++shard) {
    c.AddShard(shard, shard + 1);
  }
  // 1 + 2 + ... + kMetricShards.
  EXPECT_EQ(c.Value(), kMetricShards * (kMetricShards + 1) / 2);
  EXPECT_EQ(c.ShardValue(3), 4u);
  // Shards wrap rather than overflow the array.
  c.AddShard(kMetricShards + 3, 10);
  EXPECT_EQ(c.ShardValue(3), 14u);
}

TEST(CounterTest, ThreadLocalAddLandsSomewhere) {
  Counter c;
  c.Add();
  c.Add(4);
  EXPECT_EQ(c.Value(), 5u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  EXPECT_EQ(g.Value(), 0);
  g.Set(42);
  EXPECT_EQ(g.Value(), 42);
  g.Add(-50);
  EXPECT_EQ(g.Value(), -8);
}

// ---- Histogram ---------------------------------------------------------------

TEST(HistogramTest, BucketsCountAndSum) {
  Histogram h({1.0, 2.0, 4.0});
  // upper_bound semantics: a value equal to a bound goes to the NEXT
  // bucket (Prometheus `le` is cumulative, so the text output is still
  // conventional).
  h.Observe(0.5);   // bucket 0 (<= 1)
  h.Observe(1.0);   // bucket 1 (1 < v <= 2)... upper_bound(1.0) -> idx 1
  h.Observe(3.0);   // bucket 2
  h.Observe(100.0); // +Inf bucket
  EXPECT_EQ(h.Count(), 4u);
  EXPECT_NEAR(h.Sum(), 104.5, 1e-6);
  std::vector<uint64_t> counts = h.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);  // +Inf
}

TEST(HistogramTest, SubMillisecondSumSurvivesMicroAccumulation) {
  Histogram h({1.0});
  for (int i = 0; i < 1000; ++i) h.Observe(0.0005);
  EXPECT_NEAR(h.Sum(), 0.5, 1e-6);
}

TEST(HistogramTest, ExponentialBuckets) {
  std::vector<double> b = ExponentialBuckets(0.01, 4.0, 5);
  ASSERT_EQ(b.size(), 5u);
  EXPECT_NEAR(b[0], 0.01, 1e-12);
  EXPECT_NEAR(b[4], 0.01 * 256.0, 1e-9);
  EXPECT_TRUE(std::is_sorted(b.begin(), b.end()));
}

// ---- Registry ----------------------------------------------------------------

TEST(MetricsRegistryTest, IdempotentByName) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("test_total", "first help wins");
  Counter* b = reg.GetCounter("test_total", "ignored");
  EXPECT_EQ(a, b);
  EXPECT_EQ(reg.num_metrics(), 1u);
  a->Add(7);
  EXPECT_EQ(b->Value(), 7u);

  Gauge* g1 = reg.GetGauge("test_gauge");
  Gauge* g2 = reg.GetGauge("test_gauge");
  EXPECT_EQ(g1, g2);
  Histogram* h1 = reg.GetHistogram("test_ms", {1.0, 2.0});
  Histogram* h2 = reg.GetHistogram("test_ms", {99.0});  // bounds ignored
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h1->bounds().size(), 2u);
  EXPECT_EQ(reg.num_metrics(), 3u);

  MetricsSnapshot snap = reg.Snapshot();
  const MetricValue* m = snap.Find("test_total");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->help, "first help wins");
  EXPECT_EQ(snap.CounterValue("test_total"), 7u);
  EXPECT_EQ(snap.CounterValue("no_such_metric"), 0u);
}

TEST(MetricsRegistryTest, SnapshotSortedByName) {
  MetricsRegistry reg;
  reg.GetCounter("zzz_total");
  reg.GetCounter("aaa_total");
  reg.GetGauge("mmm");
  MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.metrics.size(), 3u);
  EXPECT_EQ(snap.metrics[0].name, "aaa_total");
  EXPECT_EQ(snap.metrics[1].name, "mmm");
  EXPECT_EQ(snap.metrics[2].name, "zzz_total");
}

// Concurrent writers vs a snapshotting reader. TSan (the engine CI job)
// is the real assertion here; the value checks document the folding
// contract: a racing snapshot is never torn and never exceeds the
// written total, and successive snapshots are monotonic.
TEST(MetricsRegistryTest, SnapshotConsistentUnderConcurrentWriters) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("writers_total");
  Histogram* h = reg.GetHistogram("writers_ms", {0.5, 1.5});
  constexpr size_t kThreads = 4;
  constexpr uint64_t kPerThread = 20000;

  std::vector<std::thread> writers;
  for (size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        c->AddShard(t);
        h->ObserveShard(t, static_cast<double>(i % 2));
      }
    });
  }

  uint64_t prev = 0;
  for (int i = 0; i < 50; ++i) {
    MetricsSnapshot snap = reg.Snapshot();
    uint64_t v = snap.CounterValue("writers_total");
    EXPECT_GE(v, prev);
    EXPECT_LE(v, kThreads * kPerThread);
    prev = v;
  }
  for (auto& w : writers) w.join();

  MetricsSnapshot final_snap = reg.Snapshot();
  EXPECT_EQ(final_snap.CounterValue("writers_total"), kThreads * kPerThread);
  const MetricValue* hm = final_snap.Find("writers_ms");
  ASSERT_NE(hm, nullptr);
  EXPECT_EQ(hm->count, kThreads * kPerThread);
  uint64_t bucket_total = 0;
  for (uint64_t n : hm->bucket_counts) bucket_total += n;
  EXPECT_EQ(bucket_total, hm->count);
}

// ---- Exposition formats ------------------------------------------------------

TEST(MetricsSnapshotTest, PrometheusTextFormat) {
  MetricsRegistry reg;
  reg.GetCounter("fmt_total", "a counter")->Add(3);
  reg.GetGauge("fmt_depth", "a gauge")->Set(-2);
  Histogram* h = reg.GetHistogram("fmt_ms", {1.0, 4.0}, "a histogram");
  h->Observe(0.5);
  h->Observe(2.0);
  h->Observe(50.0);

  std::string text = reg.Snapshot().ToPrometheusText();
  EXPECT_NE(text.find("# HELP fmt_total a counter\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE fmt_total counter\nfmt_total 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE fmt_depth gauge\nfmt_depth -2\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE fmt_ms histogram\n"), std::string::npos);
  // Buckets are cumulative and end in +Inf == count.
  EXPECT_NE(text.find("fmt_ms_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("fmt_ms_bucket{le=\"4\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("fmt_ms_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("fmt_ms_sum 52.5\n"), std::string::npos);
  EXPECT_NE(text.find("fmt_ms_count 3\n"), std::string::npos);
}

TEST(MetricsSnapshotTest, JsonBalancedAndComplete) {
  MetricsRegistry reg;
  reg.GetCounter("j_total")->Add(1);
  reg.GetGauge("j_gauge")->Set(5);
  reg.GetHistogram("j_ms", {1.0})->Observe(0.25);
  std::string json = reg.Snapshot().ToJson();
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  EXPECT_NE(json.find("\"j_total\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"j_gauge\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"le\": \"+Inf\""), std::string::npos);
}

TEST(MetricsRegistryTest, GlobalIsProcessWideAndEngineInstrumented) {
  MetricsRegistry& g1 = MetricsRegistry::Global();
  MetricsRegistry& g2 = MetricsRegistry::Global();
  EXPECT_EQ(&g1, &g2);
  // Constructing a pool registers the scheduler metrics in the global
  // registry (names the CI bench-smoke job greps for).
  engine::WorkerPool pool(0);
  MetricsSnapshot snap = g1.Snapshot();
  EXPECT_NE(snap.Find("engine_tasks_executed_total"), nullptr);
  EXPECT_NE(snap.Find("engine_tasks_stolen_total"), nullptr);
  EXPECT_NE(snap.Find("engine_queue_depth"), nullptr);
}

// ---- QueryTrace --------------------------------------------------------------

TEST(QueryTraceTest, RecordsSpansPerLane) {
  QueryTrace trace(2);  // 2 worker lanes + driver
  EXPECT_EQ(trace.num_worker_lanes(), 2u);
  EXPECT_EQ(trace.driver_lane(), 2u);
  trace.Record(0, "sel:a", SpanKind::kMorsel, 1.0, 2.0);
  trace.Record(1, "sel:a", SpanKind::kMerge, 2.0, 3.0);
  trace.Record(trace.driver_lane(), "sel:a", SpanKind::kOperator, 0.5, 3.5);
  EXPECT_EQ(trace.num_spans(), 3u);

  size_t morsels = 0, merges = 0, operators = 0;
  trace.ForEachSpan([&](const TraceSpan& span) {
    EXPECT_STREQ(span.label, "sel:a");
    EXPECT_LE(span.t_start_us, span.t_end_us);
    switch (span.kind) {
      case SpanKind::kMorsel: ++morsels; break;
      case SpanKind::kMerge: ++merges; break;
      case SpanKind::kOperator: ++operators; break;
    }
  });
  EXPECT_EQ(morsels, 1u);
  EXPECT_EQ(merges, 1u);
  EXPECT_EQ(operators, 1u);
}

TEST(QueryTraceTest, LabelsAreArenaCopied) {
  QueryTrace trace(1);
  {
    std::string ephemeral = "sel:short_lived_label";
    trace.Record(0, ephemeral, SpanKind::kMorsel, 0, 1);
    // Mutate the source string; the recorded span must be unaffected.
    ephemeral.assign(ephemeral.size(), 'x');
  }
  trace.ForEachSpan([](const TraceSpan& span) {
    EXPECT_STREQ(span.label, "sel:short_lived_label");
  });
}

TEST(QueryTraceTest, ChunkGrowthPastChunkBoundary) {
  QueryTrace trace(1);
  constexpr size_t kSpans = 1000;  // > one 256-span chunk per lane
  for (size_t i = 0; i < kSpans; ++i) {
    trace.Record(0, "m", SpanKind::kMorsel, static_cast<double>(i),
                 static_cast<double>(i) + 0.5);
  }
  EXPECT_EQ(trace.num_spans(), kSpans);
  double last_start = -1;
  trace.ForEachSpan([&](const TraceSpan& span) {
    EXPECT_GT(span.t_start_us, last_start);  // insertion order per lane
    last_start = span.t_start_us;
  });
}

TEST(TraceToJsonTest, WellFormedWithThreadNamesAndEscaping) {
  QueryTrace trace(2);
  trace.Record(0, "sel:a", SpanKind::kMorsel, 1.0, 2.5);
  trace.Record(trace.driver_lane(), "weird\"label\\x", SpanKind::kOperator,
               0.0, 3.0);
  std::string json = TraceToJson(trace);

  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // One thread_name metadata row per lane (2 workers + driver).
  EXPECT_NE(json.find("\"worker-0\""), std::string::npos);
  EXPECT_NE(json.find("\"worker-1\""), std::string::npos);
  EXPECT_NE(json.find("\"driver\""), std::string::npos);
  // The morsel span as a complete event with duration.
  EXPECT_NE(json.find("\"cat\": \"morsel\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 1.500"), std::string::npos);
  // Quote and backslash escaped in the label.
  EXPECT_NE(json.find("weird\\\"label\\\\x"), std::string::npos);
}

// ---- WorkerPool per-site tuner LRU (ISSUE 7 satellite) -----------------------

TEST(TunerSiteLruTest, EvictsColdSitesAtCap) {
  uint64_t evictions_before = MetricsRegistry::Global().Snapshot().CounterValue(
      "engine_tuner_evictions_total");
  engine::WorkerPool pool(0);
  // The first site becomes the LRU victim once the map fills; hold its
  // tuner to prove eviction does not invalidate in-flight users.
  std::shared_ptr<engine::MorselTuner> first = pool.TunerFor("site-0");
  constexpr size_t kSites = engine::WorkerPool::kMaxTunerSites + 16;
  for (size_t i = 1; i < kSites; ++i) {
    pool.TunerFor("site-" + std::to_string(i));
  }
  EXPECT_EQ(pool.num_tuner_sites(), engine::WorkerPool::kMaxTunerSites);
  uint64_t evictions_after = MetricsRegistry::Global().Snapshot().CounterValue(
      "engine_tuner_evictions_total");
  EXPECT_GE(evictions_after - evictions_before, 16u);

  // The evicted tuner still works for whoever holds it.
  EXPECT_GT(first->MorselTarget(4), 0u);
  // Re-requesting an evicted site yields a fresh feedback loop.
  std::shared_ptr<engine::MorselTuner> again = pool.TunerFor("site-0");
  EXPECT_NE(again.get(), first.get());
  EXPECT_EQ(pool.num_tuner_sites(), engine::WorkerPool::kMaxTunerSites);
}

TEST(TunerSiteLruTest, RecentlyUsedSiteSurvivesEviction) {
  engine::WorkerPool pool(0);
  std::shared_ptr<engine::MorselTuner> hot = pool.TunerFor("hot-site");
  for (size_t i = 0; i < engine::WorkerPool::kMaxTunerSites - 1; ++i) {
    pool.TunerFor("cold-" + std::to_string(i));
    pool.TunerFor("hot-site");  // keep the hot site's clock fresh
  }
  // One more cold site forces an eviction; the hot site must survive.
  pool.TunerFor("cold-overflow");
  EXPECT_EQ(pool.TunerFor("hot-site").get(), hot.get());
}

}  // namespace
}  // namespace qppt::obs
