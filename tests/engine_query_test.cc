// Engine x SSB differential tests: the 13-query flight must produce
// byte-identical results serially, through a serial EngineRunner, through
// a parallel EngineRunner (morsel-parallel operators with per-worker
// partial merges), and when many client threads are admitted at once.
// Runs under the TSan CI job together with engine_test/parallel_test.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/parallel.h"
#include "engine/session.h"
#include "ssb/queries_qppt.h"
#include "util/cancel.h"

namespace qppt::ssb {
namespace {

class EngineQueryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SsbConfig cfg;
    cfg.scale_factor = 0.02;  // ~120k lineorder rows: above the morsel
    cfg.seed = 11;            // threshold, small enough for CI + TSan
    auto data = Generate(cfg);
    ASSERT_TRUE(data.ok());
    data_ = data->release();
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }

  static void ExpectSameResults(const QueryResult& a, const QueryResult& b,
                                const std::string& label) {
    ASSERT_EQ(a.rows.size(), b.rows.size()) << label;
    for (size_t i = 0; i < a.rows.size(); ++i) {
      ASSERT_EQ(a.rows[i].size(), b.rows[i].size()) << label << " row " << i;
      for (size_t c = 0; c < a.rows[i].size(); ++c) {
        ASSERT_EQ(a.rows[i][c], b.rows[i][c])
            << label << " row " << i << " col " << c;
      }
    }
  }

  static SsbData* data_;
};

SsbData* EngineQueryTest::data_ = nullptr;

class EngineQueryParam : public EngineQueryTest,
                         public ::testing::WithParamInterface<std::string> {};

TEST_P(EngineQueryParam, ParallelEngineAgreesWithSerial) {
  const std::string& id = GetParam();
  PlanKnobs knobs;
  auto serial = RunQppt(*data_, id, knobs);
  ASSERT_TRUE(serial.ok()) << serial.status();

  engine::EngineConfig serial_cfg;
  serial_cfg.threads = 1;
  engine::EngineRunner serial_runner(serial_cfg);
  auto engine_serial = RunQppt(serial_runner, *data_, id, knobs);
  ASSERT_TRUE(engine_serial.ok()) << engine_serial.status();
  ExpectSameResults(*serial, *engine_serial, "engine(t=1), Q" + id);

  engine::EngineConfig par_cfg;
  par_cfg.threads = 4;
  par_cfg.clamp_threads_to_hardware = false;  // tiny CI boxes
  engine::EngineRunner par_runner(par_cfg);
  PlanStats stats;
  auto engine_par = RunQppt(par_runner, *data_, id, knobs, &stats);
  ASSERT_TRUE(engine_par.ok()) << engine_par.status();
  ExpectSameResults(*serial, *engine_par, "engine(t=4), Q" + id);
  EXPECT_EQ(stats.threads, 4u);
  EXPECT_GT(stats.wall_ms, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllQueries, EngineQueryParam,
                         ::testing::ValuesIn(AllQueryIds()),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           std::string name = "Q" + i.param;
                           name[name.find('.')] = '_';
                           return name;
                         });

// The big lineorder-driven queries must actually take the morsel path at
// this scale — otherwise the parallel engine silently degrades to serial
// and the differential above proves nothing.
TEST_F(EngineQueryTest, HotQueriesRunMorselParallel) {
  engine::EngineConfig cfg;
  cfg.threads = 4;
  cfg.clamp_threads_to_hardware = false;  // tiny CI boxes
  engine::EngineRunner runner(cfg);
  for (const std::string id : {"1.1", "2.1", "3.1", "4.1"}) {
    PlanStats stats;
    auto result = RunQppt(runner, *data_, id, PlanKnobs{}, &stats);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_GT(stats.TotalMorsels(), 1u) << "Q" << id << " stayed serial";
  }
}

// Multi-query admission: concurrent client threads against one runner,
// every result identical to the serial reference.
TEST_F(EngineQueryTest, ConcurrentClientsAgreeWithSerial) {
  PlanKnobs knobs;
  std::map<std::string, QueryResult> reference;
  for (const auto& id : AllQueryIds()) {
    auto serial = RunQppt(*data_, id, knobs);
    ASSERT_TRUE(serial.ok()) << serial.status();
    reference[id] = std::move(serial).value();
  }

  engine::EngineConfig cfg;
  cfg.threads = 4;
  cfg.clamp_threads_to_hardware = false;  // tiny CI boxes
  engine::EngineRunner runner(cfg);
  constexpr size_t kClients = 4;
  std::atomic<int> failures{0};
  ForkJoin fork(kClients);
  for (size_t c = 0; c < kClients; ++c) {
    fork.Spawn([&, c] {
      // Stagger the flight so clients hit different operators at once.
      const auto& ids = AllQueryIds();
      for (size_t i = 0; i < ids.size(); ++i) {
        const std::string& id = ids[(i + c * 3) % ids.size()];
        auto result = RunQppt(runner, *data_, id, knobs);
        if (!result.ok()) {
          failures++;
          continue;
        }
        const QueryResult& want = reference[id];
        if (result->rows.size() != want.rows.size()) {
          failures++;
          continue;
        }
        for (size_t r = 0; r < want.rows.size(); ++r) {
          if (result->rows[r] != want.rows[r]) {
            failures++;
            break;
          }
        }
      }
    });
  }
  fork.Join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(runner.queries_admitted(), kClients * AllQueryIds().size());
}

// The fail-safe acceptance gate: a deadline that expires mid-flight on
// the deepest query (Q4.1) must surface DeadlineExceeded well inside
// 50 ms of wall clock, release every slot and pin, and leave the SAME
// runner able to complete the whole 13-query flight with results
// identical to the serial reference.
TEST_F(EngineQueryTest, ExpiredDeadlineReturnsPromptlyAndRunnerStaysHealthy) {
  engine::EngineConfig cfg;
  cfg.threads = 4;
  cfg.clamp_threads_to_hardware = false;  // tiny CI boxes
  engine::EngineRunner runner(cfg);

  PlanKnobs timed;
  timed.deadline_ms = 0.01;  // expires before the first morsel boundary
  auto t0 = std::chrono::steady_clock::now();
  auto result = RunQppt(runner, *data_, "4.1", timed);
  double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded()) << result.status();
  EXPECT_LT(elapsed_ms, 50.0);
  EXPECT_EQ(runner.queries_running(), 0u);
  EXPECT_EQ(runner.pinned_snapshots(), 0u);

  // A generous deadline changes nothing about the results.
  PlanKnobs generous;
  generous.deadline_ms = 60000;
  auto unhurried = RunQppt(runner, *data_, "4.1", generous);
  ASSERT_TRUE(unhurried.ok()) << unhurried.status();

  for (const auto& id : AllQueryIds()) {
    auto serial = RunQppt(*data_, id, PlanKnobs{});
    ASSERT_TRUE(serial.ok()) << serial.status();
    auto engine_result = RunQppt(runner, *data_, id, PlanKnobs{});
    ASSERT_TRUE(engine_result.ok()) << engine_result.status();
    ExpectSameResults(*serial, *engine_result, "post-deadline Q" + id);
  }
}

// A token cancelled before submission: the query never runs, and a
// token cancelled from another thread stops a query mid-flight.
TEST_F(EngineQueryTest, CancelTokenStopsQueries) {
  engine::EngineConfig cfg;
  cfg.threads = 4;
  cfg.clamp_threads_to_hardware = false;  // tiny CI boxes
  engine::EngineRunner runner(cfg);

  CancelToken pre_cancelled;
  pre_cancelled.RequestCancel();
  PlanKnobs knobs;
  knobs.cancel = &pre_cancelled;
  auto result = RunQppt(runner, *data_, "4.1", knobs);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status();
  EXPECT_EQ(runner.queries_running(), 0u);
  EXPECT_EQ(runner.pinned_snapshots(), 0u);

  // Mid-flight: fire the token from a second thread while the flight
  // loops; every outcome must be clean (ok before the flip, Cancelled
  // after), and the runner stays healthy.
  CancelToken token;
  PlanKnobs cancellable;
  cancellable.cancel = &token;
  std::atomic<bool> done{false};
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    token.RequestCancel();
    done = true;
  });
  for (int i = 0; i < 1000 && !done.load(); ++i) {
    auto r = RunQppt(runner, *data_, "4.1", cancellable);
    if (!r.ok()) {
      EXPECT_TRUE(r.status().IsCancelled()) << r.status();
    }
  }
  canceller.join();
  // The flip happened mid-loop; the queries after it must have failed.
  auto post = RunQppt(runner, *data_, "4.1", cancellable);
  ASSERT_FALSE(post.ok());
  EXPECT_TRUE(post.status().IsCancelled());
  EXPECT_EQ(runner.queries_running(), 0u);
  EXPECT_EQ(runner.pinned_snapshots(), 0u);
}

}  // namespace
}  // namespace qppt::ssb
