#include <gtest/gtest.h>

#include <memory>

#include "core/operators/selection.h"
#include "core/plan.h"

namespace qppt {
namespace {

std::unique_ptr<Database> MakeDb() {
  auto db_ptr = std::make_unique<Database>();
  Database& db = *db_ptr;
  auto dict = std::make_shared<Dictionary>();
  dict->Add("red");
  dict->Add("green");
  dict->Add("blue");
  dict->Seal();
  Schema schema({{"id", ValueType::kInt64, nullptr},
                 {"color", ValueType::kString, dict},
                 {"score", ValueType::kDouble, nullptr}});
  auto table = std::make_unique<RowTable>(schema, "items");
  for (int64_t i = 0; i < 30; ++i) {
    uint64_t row[3] = {SlotFromInt64(i), SlotFromInt64(i % 3),
                       SlotFromDouble(i * 0.5)};
    table->AppendRow(row);
  }
  EXPECT_TRUE(db.AddTable(std::move(table)).ok());
  BaseIndex::Options opt;
  opt.kiss_root_bits = 16;
  EXPECT_TRUE(
      db.BuildIndex("items_by_id", "items", {"id"}, {"color", "score"}, opt)
          .ok());
  return db_ptr;
}

TEST(ExecContextTest, SlotLifecycle) {
  auto db_ptr = MakeDb();
  Database& db = *db_ptr;
  ExecContext ctx(&db);
  EXPECT_TRUE(ctx.Get("nope").status().IsNotFound());
  auto table = IndexedTable::Create(
      Schema({{"k", ValueType::kInt64, nullptr}}), {"k"});
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(ctx.Put("slot", std::move(*table)).ok());
  EXPECT_TRUE(ctx.Get("slot").ok());
  auto again = IndexedTable::Create(
      Schema({{"k", ValueType::kInt64, nullptr}}), {"k"});
  EXPECT_EQ(ctx.Put("slot", std::move(*again)).code(),
            StatusCode::kAlreadyExists);
}

TEST(ExtractResultTest, DecodesDictionariesAndDoubles) {
  auto db_ptr = MakeDb();
  Database& db = *db_ptr;
  ExecContext ctx(&db);
  SelectionSpec sel;
  sel.input_index = "items_by_id";
  sel.predicate = KeyPredicate::Range(0, 5);
  sel.carry_columns = {"id", "color", "score"};
  sel.output = {"out", {"id"}, {}};
  SelectionOp op(sel);
  ASSERT_TRUE(op.Execute(&ctx).ok());
  auto result = ExtractResult(**ctx.Get("out"));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 6u);
  EXPECT_EQ(result->rows[0][0], Value::Int(0));
  // Codes are lexicographic ranks: blue=0, green=1, red=2; row i stores
  // code i % 3.
  EXPECT_EQ(result->rows[0][1], Value::Str("blue"));
  EXPECT_EQ(result->rows[1][1], Value::Str("green"));
  EXPECT_EQ(result->rows[2][1], Value::Str("red"));
  EXPECT_EQ(result->rows[4][2], Value::Real(2.0));
}

TEST(QueryResultTest, ToStringTruncates) {
  QueryResult result;
  result.schema = Schema({{"x", ValueType::kInt64, nullptr}});
  for (int i = 0; i < 30; ++i) {
    result.rows.push_back({Value::Int(i)});
  }
  std::string s = result.ToString(/*limit=*/5);
  EXPECT_NE(s.find("(x:int64)"), std::string::npos);
  EXPECT_NE(s.find("... (30 rows total)"), std::string::npos);
}

TEST(PlanTest, EmptyPlanNeedsResultSlot) {
  auto db_ptr = MakeDb();
  Database& db = *db_ptr;
  ExecContext ctx(&db);
  Plan plan;
  EXPECT_TRUE(plan.Run(&ctx).ok());  // running zero operators is fine
  ctx.stats()->Clear();  // PlanStats contract: Clear() before re-running
  EXPECT_TRUE(plan.Execute(&ctx).status().IsInvalidArgument());
}

TEST(PlanTest, MissingResultSlotSurfaces) {
  auto db_ptr = MakeDb();
  Database& db = *db_ptr;
  ExecContext ctx(&db);
  Plan plan;
  plan.set_result_slot("never_written");
  EXPECT_TRUE(plan.Execute(&ctx).status().IsNotFound());
}

TEST(PlanTest, OperatorCountAndStats) {
  auto db_ptr = MakeDb();
  Database& db = *db_ptr;
  ExecContext ctx(&db);
  Plan plan;
  SelectionSpec sel;
  sel.input_index = "items_by_id";
  sel.predicate = KeyPredicate::All();
  sel.carry_columns = {"id"};
  sel.output = {"all", {"id"}, {}};
  plan.Emplace<SelectionOp>(sel);
  EXPECT_EQ(plan.num_operators(), 1u);
  ASSERT_TRUE(plan.Run(&ctx).ok());
  ASSERT_EQ(ctx.stats()->operators.size(), 1u);
  EXPECT_EQ(ctx.stats()->operators[0].output_tuples, 30u);
  EXPECT_GE(ctx.stats()->total_ms, 0.0);
}

}  // namespace
}  // namespace qppt
