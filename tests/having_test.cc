#include <gtest/gtest.h>

#include <map>

#include "core/operators/having.h"
#include "core/operators/selection.h"
#include "core/plan.h"
#include "util/rng.h"

namespace qppt {
namespace {

class HavingTest : public ::testing::Test {
 public:
  void SetUp() override {
    Schema schema({{"sku", ValueType::kInt64, nullptr},
                   {"amount", ValueType::kInt64, nullptr}});
    auto orders = std::make_unique<RowTable>(schema, "orders");
    Rng rng(1);
    for (int i = 0; i < 5000; ++i) {
      int64_t sku = static_cast<int64_t>(rng.NextBounded(100));
      uint64_t row[2] = {SlotFromInt64(sku),
                         SlotFromInt64(1 + static_cast<int64_t>(
                                               rng.NextBounded(10)))};
      orders->AppendRow(row);
      reference_[sku] += Int64FromSlot(row[1]);
    }
    ASSERT_TRUE(db_.AddTable(std::move(orders)).ok());
    BaseIndex::Options opt;
    opt.kiss_root_bits = 16;
    ASSERT_TRUE(
        db_.BuildIndex("orders_by_sku", "orders", {"sku"}, {"amount"}, opt)
            .ok());
  }

  // Builds the group-by plan: sum(amount) per sku, then HAVING.
  Plan MakePlan(std::vector<Residual> residuals) {
    Plan plan;
    SelectionSpec sel;
    sel.input_index = "orders_by_sku";
    sel.predicate = KeyPredicate::All();
    sel.carry_columns = {"sku", "amount"};
    AggSpec agg({{AggFn::kSum, ScalarExpr::Column("amount"), "total"}});
    sel.output = {"by_sku", {"sku"}, agg};
    plan.Emplace<SelectionOp>(sel);

    HavingSpec having;
    having.input_slot = "by_sku";
    having.residuals = std::move(residuals);
    having.output_slot = "result";
    plan.Emplace<HavingOp>(having);
    plan.set_result_slot("result");
    return plan;
  }

  Database db_;
  std::map<int64_t, int64_t> reference_;
};

TEST_F(HavingTest, FiltersOnAggregateValue) {
  ExecContext ctx(&db_);
  Plan plan = MakePlan({Residual::Ge("total", 300)});
  auto result = plan.Execute(&ctx);
  ASSERT_TRUE(result.ok()) << result.status();

  std::map<int64_t, int64_t> expected;
  for (const auto& [sku, total] : reference_) {
    if (total >= 300) expected[sku] = total;
  }
  ASSERT_EQ(result->rows.size(), expected.size());
  auto it = expected.begin();
  for (const auto& row : result->rows) {
    EXPECT_EQ(row[0].AsInt(), it->first);
    EXPECT_EQ(row[1].AsInt(), it->second);
    ++it;
  }
}

TEST_F(HavingTest, FiltersOnGroupKeyToo) {
  // Selection and having are the same physical operator: predicates on
  // the key column work identically.
  ExecContext ctx(&db_);
  Plan plan = MakePlan({Residual::Between("sku", 10, 19)});
  auto result = plan.Execute(&ctx);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 10u);
  for (const auto& row : result->rows) {
    EXPECT_GE(row[0].AsInt(), 10);
    EXPECT_LE(row[0].AsInt(), 19);
  }
}

TEST_F(HavingTest, ConjunctionOfResiduals) {
  ExecContext ctx(&db_);
  Plan plan =
      MakePlan({Residual::Ge("total", 250), Residual::Lt("sku", 50)});
  auto result = plan.Execute(&ctx);
  ASSERT_TRUE(result.ok());
  size_t expected = 0;
  for (const auto& [sku, total] : reference_) {
    if (total >= 250 && sku < 50) ++expected;
  }
  EXPECT_EQ(result->rows.size(), expected);
}

TEST_F(HavingTest, OutputRemainsIndexedAndOrdered) {
  ExecContext ctx(&db_);
  Plan plan = MakePlan({Residual::Ge("total", 0)});
  ASSERT_TRUE(plan.Run(&ctx).ok());
  auto out = ctx.Get("result");
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE((*out)->aggregated());
  int64_t prev = -1;
  (*out)->ScanInOrder([&](const uint64_t* row) {
    EXPECT_GT(Int64FromSlot(row[0]), prev);
    prev = Int64FromSlot(row[0]);
  });
}

TEST_F(HavingTest, RejectsNonAggregatedInput) {
  ExecContext ctx(&db_);
  Plan plan;
  SelectionSpec sel;
  sel.input_index = "orders_by_sku";
  sel.predicate = KeyPredicate::All();
  sel.carry_columns = {"sku"};
  sel.output = {"plain", {"sku"}, {}};
  plan.Emplace<SelectionOp>(sel);
  HavingSpec having;
  having.input_slot = "plain";
  having.output_slot = "out";
  plan.Emplace<HavingOp>(having);
  EXPECT_TRUE(plan.Run(&ctx).IsInvalidArgument());
}

TEST_F(HavingTest, UnknownColumnFails) {
  ExecContext ctx(&db_);
  Plan plan = MakePlan({Residual::Ge("ghost", 1)});
  EXPECT_TRUE(plan.Run(&ctx).IsNotFound());
}

}  // namespace
}  // namespace qppt
