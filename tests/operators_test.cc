// End-to-end operator tests on a toy star schema, differentially checked
// against hand-rolled scans.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>
#include <vector>

#include "core/operators/select_join.h"
#include "core/operators/selection.h"
#include "core/operators/set_ops.h"
#include "core/operators/star_join.h"
#include "core/plan.h"
#include "util/cancel.h"
#include "util/rng.h"

namespace qppt {
namespace {

constexpr int64_t kNumParts = 400;
constexpr int64_t kNumCustomers = 300;
constexpr int64_t kNumDates = 365;
constexpr int64_t kNumSales = 20000;
constexpr int64_t kNumBrands = 25;
constexpr int64_t kNumRegions = 5;

class OperatorsTest : public ::testing::Test {
 public:
  void SetUp() override {
    BaseIndex::Options opt;
    opt.kiss_root_bits = 20;

    {
      Schema schema({{"partkey", ValueType::kInt64, nullptr},
                     {"brand", ValueType::kInt64, nullptr}});
      auto part = std::make_unique<RowTable>(schema, "part");
      Rng rng(1);
      for (int64_t i = 0; i < kNumParts; ++i) {
        uint64_t row[2] = {
            SlotFromInt64(i),
            SlotFromInt64(static_cast<int64_t>(rng.NextBounded(kNumBrands)))};
        part->AppendRow(row);
      }
      ASSERT_TRUE(db_.AddTable(std::move(part)).ok());
      ASSERT_TRUE(
          db_.BuildIndex("part_brand", "part", {"brand"}, {"partkey"}, opt)
              .ok());
      ASSERT_TRUE(
          db_.BuildIndex("part_pk", "part", {"partkey"}, {"brand"}, opt).ok());
    }
    {
      Schema schema({{"custkey", ValueType::kInt64, nullptr},
                     {"region", ValueType::kInt64, nullptr}});
      auto cust = std::make_unique<RowTable>(schema, "customer");
      Rng rng(2);
      for (int64_t i = 0; i < kNumCustomers; ++i) {
        uint64_t row[2] = {
            SlotFromInt64(i),
            SlotFromInt64(static_cast<int64_t>(rng.NextBounded(kNumRegions)))};
        cust->AppendRow(row);
      }
      ASSERT_TRUE(db_.AddTable(std::move(cust)).ok());
      ASSERT_TRUE(db_.BuildIndex("cust_region", "customer", {"region"},
                                 {"custkey"}, opt)
                      .ok());
    }
    {
      Schema schema({{"orderdate", ValueType::kInt64, nullptr},
                     {"custkey", ValueType::kInt64, nullptr},
                     {"partkey", ValueType::kInt64, nullptr},
                     {"amount", ValueType::kInt64, nullptr}});
      auto sales = std::make_unique<RowTable>(schema, "sales");
      Rng rng(3);
      for (int64_t i = 0; i < kNumSales; ++i) {
        uint64_t row[4] = {
            SlotFromInt64(static_cast<int64_t>(rng.NextBounded(kNumDates))),
            SlotFromInt64(
                static_cast<int64_t>(rng.NextBounded(kNumCustomers))),
            SlotFromInt64(static_cast<int64_t>(rng.NextBounded(kNumParts))),
            SlotFromInt64(static_cast<int64_t>(rng.NextBounded(100)))};
        sales->AppendRow(row);
      }
      ASSERT_TRUE(db_.AddTable(std::move(sales)).ok());
      ASSERT_TRUE(db_.BuildIndex("sales_partkey", "sales", {"partkey"},
                                 {"orderdate", "custkey", "amount"}, opt)
                      .ok());
      ASSERT_TRUE(db_.BuildIndex("sales_custkey", "sales", {"custkey"},
                                 {"orderdate", "partkey", "amount"}, opt)
                      .ok());
    }
  }

  PlanKnobs Knobs(size_t buffer = 512) {
    PlanKnobs knobs;
    knobs.join_buffer_size = buffer;
    knobs.table_options.kiss_root_bits = 20;
    return knobs;
  }

  const RowTable& Table(const std::string& name) {
    return *db_.table(name).value();
  }

  int64_t PartBrand(int64_t partkey) {
    return Int64FromSlot(Table("part").GetSlot(static_cast<Rid>(partkey), 1));
  }
  int64_t CustRegion(int64_t custkey) {
    return Int64FromSlot(
        Table("customer").GetSlot(static_cast<Rid>(custkey), 1));
  }

  Database db_;
};

TEST_F(OperatorsTest, SelectionPointPredicate) {
  ExecContext ctx(&db_, Knobs());
  SelectionSpec spec;
  spec.input_index = "part_brand";
  spec.predicate = KeyPredicate::Point(7);
  spec.carry_columns = {"partkey", "brand"};
  spec.output = {"part_sel", {"partkey"}, {}};
  SelectionOp op(spec);
  ASSERT_TRUE(op.Execute(&ctx).ok());

  auto out = ctx.Get("part_sel");
  ASSERT_TRUE(out.ok());
  size_t expected = 0;
  for (Rid r = 0; r < static_cast<Rid>(kNumParts); ++r) {
    if (Int64FromSlot(Table("part").GetSlot(r, 1)) == 7) ++expected;
  }
  EXPECT_EQ((*out)->num_tuples(), expected);
  (*out)->ScanInOrder([&](const uint64_t* row) {
    EXPECT_EQ(Int64FromSlot(row[1]), 7);  // brand carried correctly
  });
}

TEST_F(OperatorsTest, SelectionRangeWithResidual) {
  ExecContext ctx(&db_, Knobs());
  SelectionSpec spec;
  spec.input_index = "part_brand";
  spec.predicate = KeyPredicate::Range(5, 9);
  spec.residuals = {Residual::Ge("partkey", 100)};
  spec.carry_columns = {"partkey"};
  spec.output = {"sel", {"partkey"}, {}};
  SelectionOp op(spec);
  ASSERT_TRUE(op.Execute(&ctx).ok());

  size_t expected = 0;
  for (Rid r = 0; r < static_cast<Rid>(kNumParts); ++r) {
    int64_t brand = Int64FromSlot(Table("part").GetSlot(r, 1));
    if (brand >= 5 && brand <= 9 && static_cast<int64_t>(r) >= 100) ++expected;
  }
  EXPECT_EQ((*ctx.Get("sel"))->num_tuples(), expected);
}

TEST_F(OperatorsTest, SelectionWithAggregation) {
  // Level-1 composition: the selection's output index aggregates directly.
  ExecContext ctx(&db_, Knobs());
  SelectionSpec spec;
  spec.input_index = "part_brand";
  spec.predicate = KeyPredicate::All();
  spec.carry_columns = {"brand", "partkey"};
  AggSpec agg({{AggFn::kCount, {}, "n"}});
  spec.output = {"by_brand", {"brand"}, agg};
  SelectionOp op(spec);
  ASSERT_TRUE(op.Execute(&ctx).ok());

  std::map<int64_t, int64_t> expected;
  for (Rid r = 0; r < static_cast<Rid>(kNumParts); ++r) {
    expected[Int64FromSlot(Table("part").GetSlot(r, 1))]++;
  }
  auto result = ExtractResult(**ctx.Get("by_brand"));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), expected.size());
  auto it = expected.begin();
  for (const auto& row : result->rows) {
    EXPECT_EQ(row[0].AsInt(), it->first);
    EXPECT_EQ(row[1].AsInt(), it->second);
    ++it;
  }
}

// Reference implementation of: sum(amount) grouped by orderdate over
// sales x part(brand=B) x customer(region=R).
std::map<int64_t, int64_t> ReferenceStarQuery(OperatorsTest* t,
                                              const RowTable& sales,
                                              int64_t brand, int64_t region) {
  std::map<int64_t, int64_t> by_date;
  for (Rid r = 0; r < sales.num_rows(); ++r) {
    int64_t partkey = Int64FromSlot(sales.GetSlot(r, 2));
    int64_t custkey = Int64FromSlot(sales.GetSlot(r, 1));
    if (t->PartBrand(partkey) != brand) continue;
    if (region >= 0 && t->CustRegion(custkey) != region) continue;
    by_date[Int64FromSlot(sales.GetSlot(r, 0))] +=
        Int64FromSlot(sales.GetSlot(r, 3));
  }
  return by_date;
}

TEST_F(OperatorsTest, TwoWayJoinGroup) {
  // selection(part.brand=7) then sales ⋈ part_sel on partkey, grouped by
  // orderdate with sum(amount).
  ExecContext ctx(&db_, Knobs());
  Plan plan;

  SelectionSpec sel;
  sel.input_index = "part_brand";
  sel.predicate = KeyPredicate::Point(7);
  sel.carry_columns = {"partkey"};
  sel.output = {"part_sel", {"partkey"}, {}};
  plan.Emplace<SelectionOp>(sel);

  StarJoinSpec join;
  join.left = SideRef::Base("sales_partkey");
  join.left_columns = {"orderdate", "amount"};
  join.right = SideRef::Slot("part_sel");
  join.right_columns = {};
  AggSpec agg({{AggFn::kSum, ScalarExpr::Column("amount"), "sum_amount"}});
  join.output = {"result", {"orderdate"}, agg};
  plan.Emplace<StarJoinOp>(join);
  plan.set_result_slot("result");

  auto result = plan.Execute(&ctx);
  ASSERT_TRUE(result.ok()) << result.status();

  auto expected = ReferenceStarQuery(this, Table("sales"), 7, -1);
  ASSERT_EQ(result->rows.size(), expected.size());
  auto it = expected.begin();
  for (const auto& row : result->rows) {
    EXPECT_EQ(row[0].AsInt(), it->first);
    EXPECT_EQ(row[1].AsInt(), it->second);
    ++it;
  }
  // Stats were recorded for both operators.
  EXPECT_EQ(ctx.stats()->operators.size(), 2u);
  EXPECT_GT(ctx.stats()->operators[1].output_keys, 0u);
}

TEST_F(OperatorsTest, ThreeWayStarJoinWithAssist) {
  // sales ⋈ part(brand=3) with assisting semi-join customer(region=2),
  // grouped by orderdate.
  ExecContext ctx(&db_, Knobs());
  Plan plan;

  SelectionSpec part_sel;
  part_sel.input_index = "part_brand";
  part_sel.predicate = KeyPredicate::Point(3);
  part_sel.carry_columns = {"partkey"};
  part_sel.output = {"part_sel", {"partkey"}, {}};
  plan.Emplace<SelectionOp>(part_sel);

  SelectionSpec cust_sel;
  cust_sel.input_index = "cust_region";
  cust_sel.predicate = KeyPredicate::Point(2);
  cust_sel.carry_columns = {"custkey"};
  cust_sel.output = {"cust_sel", {"custkey"}, {}};
  plan.Emplace<SelectionOp>(cust_sel);

  StarJoinSpec join;
  join.left = SideRef::Base("sales_partkey");
  join.left_columns = {"orderdate", "custkey", "amount"};
  join.right = SideRef::Slot("part_sel");
  join.right_columns = {};
  join.assists = {{SideRef::Slot("cust_sel"), "custkey", {}}};
  AggSpec agg({{AggFn::kSum, ScalarExpr::Column("amount"), "sum_amount"}});
  join.output = {"result", {"orderdate"}, agg};
  plan.Emplace<StarJoinOp>(join);
  plan.set_result_slot("result");

  auto result = plan.Execute(&ctx);
  ASSERT_TRUE(result.ok()) << result.status();

  auto expected = ReferenceStarQuery(this, Table("sales"), 3, 2);
  ASSERT_EQ(result->rows.size(), expected.size());
  auto it = expected.begin();
  for (const auto& row : result->rows) {
    EXPECT_EQ(row[0].AsInt(), it->first);
    EXPECT_EQ(row[1].AsInt(), it->second);
    ++it;
  }
}

TEST_F(OperatorsTest, AssistCarriesColumns) {
  // The assist extends combinations with a dimension attribute (region),
  // which then serves as group key.
  ExecContext ctx(&db_, Knobs());
  Plan plan;

  SelectionSpec part_sel;
  part_sel.input_index = "part_brand";
  part_sel.predicate = KeyPredicate::Point(3);
  part_sel.carry_columns = {"partkey"};
  part_sel.output = {"part_sel", {"partkey"}, {}};
  plan.Emplace<SelectionOp>(part_sel);

  SelectionSpec cust_all;
  cust_all.input_index = "cust_region";
  cust_all.predicate = KeyPredicate::All();
  cust_all.carry_columns = {"custkey", "region"};
  cust_all.output = {"cust_all", {"custkey"}, {}};
  plan.Emplace<SelectionOp>(cust_all);

  StarJoinSpec join;
  join.left = SideRef::Base("sales_partkey");
  join.left_columns = {"custkey", "amount"};
  join.right = SideRef::Slot("part_sel");
  join.right_columns = {};
  join.assists = {{SideRef::Slot("cust_all"), "custkey", {"region"}}};
  AggSpec agg({{AggFn::kSum, ScalarExpr::Column("amount"), "sum_amount"}});
  join.output = {"result", {"region"}, agg};
  plan.Emplace<StarJoinOp>(join);
  plan.set_result_slot("result");

  auto result = plan.Execute(&ctx);
  ASSERT_TRUE(result.ok()) << result.status();

  std::map<int64_t, int64_t> expected;
  const RowTable& sales = Table("sales");
  for (Rid r = 0; r < sales.num_rows(); ++r) {
    int64_t partkey = Int64FromSlot(sales.GetSlot(r, 2));
    if (PartBrand(partkey) != 3) continue;
    int64_t custkey = Int64FromSlot(sales.GetSlot(r, 1));
    expected[CustRegion(custkey)] += Int64FromSlot(sales.GetSlot(r, 3));
  }
  ASSERT_EQ(result->rows.size(), expected.size());
  auto it = expected.begin();
  for (const auto& row : result->rows) {
    EXPECT_EQ(row[0].AsInt(), it->first);
    EXPECT_EQ(row[1].AsInt(), it->second);
    ++it;
  }
}

TEST_F(OperatorsTest, SelectJoinEquivalentToSelectionPlusJoin) {
  // The composed select-join (§4.3) must produce exactly the plan result
  // of selection + join, for every joinbuffer size.
  for (size_t buffer : {size_t{1}, size_t{64}, size_t{512}}) {
    // Reference: selection + 2-way join.
    ExecContext ctx_ref(&db_, Knobs(buffer));
    Plan ref_plan;
    SelectionSpec sel;
    sel.input_index = "cust_region";
    sel.predicate = KeyPredicate::Point(1);
    sel.carry_columns = {"custkey"};
    sel.output = {"cust_sel", {"custkey"}, {}};
    ref_plan.Emplace<SelectionOp>(sel);

    StarJoinSpec join;
    join.left = SideRef::Base("sales_custkey");
    join.left_columns = {"orderdate", "amount"};
    join.right = SideRef::Slot("cust_sel");
    join.right_columns = {};
    AggSpec agg({{AggFn::kSum, ScalarExpr::Column("amount"), "s"}});
    join.output = {"result", {"orderdate"}, agg};
    ref_plan.Emplace<StarJoinOp>(join);
    ref_plan.set_result_slot("result");
    auto expected = ref_plan.Execute(&ctx_ref);
    ASSERT_TRUE(expected.ok()) << expected.status();

    // Composed: select-join streaming the customer selection into probes
    // of the sales index.
    ExecContext ctx(&db_, Knobs(buffer));
    Plan plan;
    SelectJoinSpec sj;
    sj.input_index = "cust_region";
    sj.predicate = KeyPredicate::Point(1);
    sj.left_columns = {"custkey"};
    sj.probe_column = "custkey";
    sj.right = SideRef::Base("sales_custkey");
    sj.right_columns = {"orderdate", "amount"};
    sj.output = {"result", {"orderdate"}, agg};
    plan.Emplace<SelectJoinOp>(sj);
    plan.set_result_slot("result");
    auto got = plan.Execute(&ctx);
    ASSERT_TRUE(got.ok()) << got.status();

    ASSERT_EQ(got->rows.size(), expected->rows.size()) << "buffer=" << buffer;
    for (size_t i = 0; i < got->rows.size(); ++i) {
      EXPECT_EQ(got->rows[i][0], expected->rows[i][0]);
      EXPECT_EQ(got->rows[i][1], expected->rows[i][1]);
    }
  }
}

TEST_F(OperatorsTest, IntersectMatchesConjunction) {
  // Two rid-keyed selections on part, intersected (§4.1).
  ExecContext ctx(&db_, Knobs());
  Plan plan;

  SelectionSpec s1;
  s1.input_index = "part_brand";
  s1.predicate = KeyPredicate::Range(0, 12);
  s1.carry_columns = {"@rid", "partkey"};
  s1.output = {"s1", {"@rid"}, {}};
  plan.Emplace<SelectionOp>(s1);

  SelectionSpec s2;
  s2.input_index = "part_pk";
  s2.predicate = KeyPredicate::Range(50, 250);
  s2.carry_columns = {"@rid"};
  s2.output = {"s2", {"@rid"}, {}};
  plan.Emplace<SelectionOp>(s2);

  SetOpSpec inter;
  inter.left = SideRef::Slot("s1");
  inter.left_columns = {"partkey"};
  inter.right = SideRef::Slot("s2");
  inter.right_columns = {};
  inter.output = {"both", {"partkey"}, {}};
  plan.Emplace<IntersectOp>(inter);

  ASSERT_TRUE(plan.Run(&ctx).ok());
  size_t expected = 0;
  for (Rid r = 0; r < static_cast<Rid>(kNumParts); ++r) {
    int64_t brand = Int64FromSlot(Table("part").GetSlot(r, 1));
    int64_t pk = Int64FromSlot(Table("part").GetSlot(r, 0));
    if (brand <= 12 && pk >= 50 && pk <= 250) ++expected;
  }
  EXPECT_EQ((*ctx.Get("both"))->num_tuples(), expected);
}

TEST_F(OperatorsTest, UnionDistinctMatchesDisjunction) {
  ExecContext ctx(&db_, Knobs());
  Plan plan;

  SelectionSpec s1;
  s1.input_index = "part_brand";
  s1.predicate = KeyPredicate::Point(3);
  s1.carry_columns = {"@rid", "partkey"};
  s1.output = {"s1", {"@rid"}, {}};
  plan.Emplace<SelectionOp>(s1);

  SelectionSpec s2;
  s2.input_index = "part_brand";
  s2.predicate = KeyPredicate::Point(4);
  s2.carry_columns = {"@rid", "partkey"};
  s2.output = {"s2", {"@rid"}, {}};
  plan.Emplace<SelectionOp>(s2);

  SetOpSpec uni;
  uni.left = SideRef::Slot("s1");
  uni.left_columns = {"@rid", "partkey"};
  uni.right = SideRef::Slot("s2");
  uni.right_columns = {"@rid", "partkey"};
  uni.output = {"either", {"@rid"}, {}};
  plan.Emplace<UnionDistinctOp>(uni);

  ASSERT_TRUE(plan.Run(&ctx).ok());
  size_t expected = 0;
  for (Rid r = 0; r < static_cast<Rid>(kNumParts); ++r) {
    int64_t brand = Int64FromSlot(Table("part").GetSlot(r, 1));
    if (brand == 3 || brand == 4) ++expected;
  }
  EXPECT_EQ((*ctx.Get("either"))->num_tuples(), expected);
}

TEST_F(OperatorsTest, MultidimensionalSelection) {
  // §4.1: conjunctive predicates prefer a multidimensional index as
  // input. Box predicate (brand in [5, 9]) AND (partkey in [100, 300])
  // over a composite (brand, partkey) index.
  BaseIndex::Options opt;
  opt.kiss_root_bits = 20;
  ASSERT_TRUE(db_.BuildIndex("part_brand_pk", "part", {"brand", "partkey"},
                             {"partkey", "brand"}, opt)
                  .ok());
  ExecContext ctx(&db_, Knobs());
  SelectionSpec spec;
  spec.input_index = "part_brand_pk";
  spec.composite_range = {{5, 9}, {100, 300}};
  spec.carry_columns = {"partkey", "brand"};
  spec.output = {"sel", {"partkey"}, {}};
  SelectionOp op(spec);
  ASSERT_TRUE(op.Execute(&ctx).ok());

  size_t expected = 0;
  for (Rid r = 0; r < static_cast<Rid>(kNumParts); ++r) {
    int64_t brand = Int64FromSlot(Table("part").GetSlot(r, 1));
    int64_t pk = Int64FromSlot(Table("part").GetSlot(r, 0));
    if (brand >= 5 && brand <= 9 && pk >= 100 && pk <= 300) ++expected;
  }
  auto out = ctx.Get("sel");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out)->num_tuples(), expected);
  (*out)->ScanInOrder([&](const uint64_t* row) {
    EXPECT_GE(Int64FromSlot(row[0]), 100);
    EXPECT_LE(Int64FromSlot(row[0]), 300);
    EXPECT_GE(Int64FromSlot(row[1]), 5);
    EXPECT_LE(Int64FromSlot(row[1]), 9);
  });

  // Wrong arity is rejected.
  ExecContext ctx2(&db_, Knobs());
  SelectionSpec bad = spec;
  bad.composite_range = {{5, 9}};
  SelectionOp bad_op(bad);
  EXPECT_TRUE(bad_op.Execute(&ctx2).IsInvalidArgument());
}

TEST_F(OperatorsTest, PlanErrorsSurface) {
  ExecContext ctx(&db_, Knobs());
  Plan plan;
  SelectionSpec sel;
  sel.input_index = "no_such_index";
  sel.predicate = KeyPredicate::All();
  sel.carry_columns = {"x"};
  sel.output = {"out", {"x"}, {}};
  plan.Emplace<SelectionOp>(sel);
  EXPECT_TRUE(plan.Run(&ctx).IsNotFound());

  Plan empty;
  ExecContext ctx2(&db_, Knobs());
  EXPECT_TRUE(empty.Execute(&ctx2).status().IsInvalidArgument());
}

TEST_F(OperatorsTest, StatsToStringRenders) {
  ExecContext ctx(&db_, Knobs());
  Plan plan;
  SelectionSpec sel;
  sel.input_index = "part_brand";
  sel.predicate = KeyPredicate::Point(1);
  sel.carry_columns = {"partkey"};
  sel.output = {"out", {"partkey"}, {}};
  plan.Emplace<SelectionOp>(sel);
  ASSERT_TRUE(plan.Run(&ctx).ok());
  std::string rendered = ctx.stats()->ToString();
  EXPECT_NE(rendered.find("selection(part_brand)"), std::string::npos);
  EXPECT_NE(rendered.find("TOTAL"), std::string::npos);
}

// The star join must produce the same result whatever index family each
// main uses — including the mixed KISS x prefix pairs with negative and
// >= 2^32 join keys: the KISS side stores the attribute truncated to 32
// bits, and the mixed path probes KISS with the same truncation, so
// every value a KISS x KISS scan can represent joins identically. (Keys
// are chosen alias-free; aliasing values are conflated by ANY
// KISS-backed path by design, which the exact prefix x prefix scan
// legitimately distinguishes.)
TEST(StarJoinFamiliesTest, ExtremeKeysJoinIdenticallyAcrossFamilies) {
  const std::vector<int64_t> keys{-70000, -3,    -1,
                                  0,      5,     70000,
                                  int64_t{5000000000}};  // > 2^32
  auto make_side = [&](bool prefer_kiss, const char* value_col,
                       int64_t value_base, int64_t dups) {
    Schema schema({{"k", ValueType::kInt64, nullptr},
                   {value_col, ValueType::kInt64, nullptr}});
    IndexedTable::Options opt;
    opt.prefer_kiss = prefer_kiss;
    opt.kiss_root_bits = 20;
    auto table = IndexedTable::Create(schema, {"k"}, opt);
    EXPECT_TRUE(table.ok());
    int64_t v = value_base;
    for (int64_t k : keys) {
      for (int64_t d = 0; d < dups; ++d) {
        uint64_t row[2] = {SlotFromInt64(k), SlotFromInt64(v++)};
        (*table)->Insert(row);
      }
    }
    return std::move(table).value();
  };

  Database db;
  auto run = [&](bool left_kiss, bool right_kiss) {
    ExecContext ctx(&db, PlanKnobs{});
    EXPECT_TRUE(
        ctx.Put("l", make_side(left_kiss, "lv", 100, /*dups=*/2)).ok());
    EXPECT_TRUE(
        ctx.Put("r", make_side(right_kiss, "rv", 500, /*dups=*/3)).ok());
    StarJoinSpec join;
    join.left = SideRef::Slot("l");
    join.left_columns = {"k", "lv"};
    join.right = SideRef::Slot("r");
    join.right_columns = {"rv"};
    join.output = {"result", {"k"}, {}};
    Plan plan;
    plan.Emplace<StarJoinOp>(join);
    plan.set_result_slot("result");
    auto result = plan.Execute(&ctx);
    EXPECT_TRUE(result.ok()) << result.status();
    std::multiset<std::tuple<int64_t, int64_t, int64_t>> rows;
    for (const auto& row : result->rows) {
      rows.emplace(row[0].AsInt(), row[1].AsInt(), row[2].AsInt());
    }
    return rows;
  };

  auto reference = run(/*left_kiss=*/true, /*right_kiss=*/true);
  // Every key matches itself: 6 keys x 2 left dups x 3 right dups.
  EXPECT_EQ(reference.size(), keys.size() * 2 * 3);
  EXPECT_EQ(run(true, false), reference) << "kiss x prefix diverged";
  EXPECT_EQ(run(false, true), reference) << "prefix x kiss diverged";
  EXPECT_EQ(run(false, false), reference) << "prefix x prefix diverged";
}

// Regression (qppt-cancel-coverage finding): the SERIAL star-join scan
// paths had no cancellation polls at all — only the parallel morsel
// drivers checked the token, so a single-threaded join of two large
// mains was unstoppable. The operator is driven directly (not through
// Plan::Run) so the plan-boundary check cannot mask a missing in-loop
// poll; a pre-cancelled token must unwind via CancelledException after
// at most kCancelStride emitted pairs.
TEST_F(OperatorsTest, SerialStarJoinPollsCancellationMidScan) {
  CancelToken cancelled;
  cancelled.RequestCancel();
  PlanKnobs knobs = Knobs();
  knobs.cancel = &cancelled;
  ExecContext ctx(&db_, knobs);

  // sales ⋈ part on partkey: 20000 emitted pairs > kCancelStride.
  StarJoinSpec join;
  join.left = SideRef::Base("sales_partkey");
  join.left_columns = {"orderdate", "amount"};
  join.right = SideRef::Base("part_pk");
  join.right_columns = {};
  join.output = {"result", {"orderdate"}, {}};
  StarJoinOp op(join);
  bool unwound = false;
  try {
    Status st = op.Execute(&ctx);
    FAIL() << "serial star join ignored its cancel token: " << st;
  } catch (const CancelledException& e) {
    unwound = true;
    EXPECT_TRUE(e.status().IsCancelled()) << e.status();
  }
  EXPECT_TRUE(unwound);
}

}  // namespace
}  // namespace qppt
