// Engine-layer unit tests: work-stealing scheduler, per-worker partial
// output merge, and the shared-scan read batching of the session front
// door. These (plus parallel_test) are the suite the TSan CI job runs.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/agg.h"
#include "core/indexed_table.h"
#include "core/parallel.h"
#include "engine/parallel_ops.h"
#include "engine/scheduler.h"
#include "engine/session.h"
#include "util/rng.h"

namespace qppt {
namespace {

// ---- WorkerPool ------------------------------------------------------------

TEST(WorkerPoolTest, RunsEveryMorselExactlyOnce) {
  engine::WorkerPool pool(4);
  EXPECT_EQ(pool.num_workers(), 4u);
  for (size_t morsels : {1, 3, 4, 17, 100}) {
    std::vector<std::atomic<int>> hits(morsels);
    for (auto& h : hits) h = 0;
    pool.Run(morsels, [&](size_t worker, size_t m) {
      ASSERT_LT(worker, 4u);
      ASSERT_LT(m, morsels);
      hits[m]++;
    });
    for (size_t m = 0; m < morsels; ++m) {
      EXPECT_EQ(hits[m].load(), 1) << "morsel " << m << " of " << morsels;
    }
  }
}

TEST(WorkerPoolTest, ZeroWorkersRunsInline) {
  engine::WorkerPool pool(0);
  EXPECT_EQ(pool.num_workers(), 1u);
  std::vector<int> hits(5, 0);
  pool.Run(5, [&](size_t worker, size_t m) {
    EXPECT_EQ(worker, 0u);
    hits[m]++;
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(WorkerPoolTest, ZeroMorselsIsANoop) {
  engine::WorkerPool pool(2);
  pool.Run(0, [&](size_t, size_t) { FAIL() << "no morsels to run"; });
}

TEST(WorkerPoolTest, ConcurrentBatchesInterleave) {
  engine::WorkerPool pool(4);
  constexpr size_t kClients = 6;
  constexpr size_t kMorsels = 64;
  std::atomic<uint64_t> total{0};
  ForkJoin fork(kClients);
  for (size_t c = 0; c < kClients; ++c) {
    fork.Spawn([&pool, &total, c] {
      pool.Run(kMorsels, [&](size_t, size_t m) {
        total += c * 1000 + m;
      });
    });
  }
  fork.Join();
  uint64_t expected = 0;
  for (size_t c = 0; c < kClients; ++c) {
    for (size_t m = 0; m < kMorsels; ++m) expected += c * 1000 + m;
  }
  EXPECT_EQ(total.load(), expected);
}

TEST(WorkerPoolTest, MorselExceptionPropagatesToSubmitter) {
  engine::WorkerPool pool(3);
  EXPECT_THROW(
      pool.Run(32,
               [&](size_t, size_t m) {
                 if (m == 7) throw std::runtime_error("morsel 7 boom");
               }),
      std::runtime_error);
  // The pool survives a failed batch and keeps scheduling.
  std::atomic<int> ran{0};
  pool.Run(8, [&](size_t, size_t) { ran++; });
  EXPECT_EQ(ran.load(), 8);
}

// ---- partial outputs & merge -----------------------------------------------

Schema AggInputSchema() {
  return Schema({{"g", ValueType::kInt64, nullptr},
                 {"x", ValueType::kInt64, nullptr}});
}

AggSpec FullAggSpec() {
  return AggSpec({{AggFn::kSum, ScalarExpr::Column("x"), "sum_x"},
                  {AggFn::kCount, ScalarExpr::Column("x"), "cnt"},
                  {AggFn::kMin, ScalarExpr::Column("x"), "min_x"},
                  {AggFn::kMax, ScalarExpr::Column("x"), "max_x"},
                  {AggFn::kAvg, ScalarExpr::Column("x"), "avg_x"}});
}

// Splitting inserts across CloneEmpty partials and merging must equal
// inserting everything into one table — for every aggregate function.
TEST(PartialOutputsTest, AggregateMergeMatchesSerialKiss) {
  Schema input = AggInputSchema();
  auto serial_or = IndexedTable::CreateAggregated(
      {{"g", ValueType::kInt64, nullptr}}, FullAggSpec(), input);
  ASSERT_TRUE(serial_or.ok());
  auto serial = std::move(serial_or).value();
  ASSERT_EQ(serial->kind(), IndexedTable::Kind::kKiss);

  auto merged = serial->CloneEmpty();
  engine::PartialOutputs partials(*merged, 3);

  Rng rng(99);
  for (int i = 0; i < 5000; ++i) {
    uint64_t g = SlotFromInt64(static_cast<int64_t>(rng.NextBounded(40)));
    uint64_t x = SlotFromInt64(static_cast<int64_t>(rng.NextBounded(1000)) -
                               500);
    uint64_t row[2] = {g, x};
    serial->InsertAggregated(&g, row);
    partials.worker(i % 3)->InsertAggregated(&g, row);
  }
  partials.MergeInto(merged.get());

  EXPECT_EQ(merged->num_tuples(), serial->num_tuples());
  EXPECT_EQ(merged->num_keys(), serial->num_keys());
  std::vector<std::vector<uint64_t>> expected;
  serial->ScanGroups([&](const uint64_t* row) {
    expected.emplace_back(row, row + serial->schema().num_columns());
  });
  size_t at = 0;
  merged->ScanGroups([&](const uint64_t* row) {
    ASSERT_LT(at, expected.size());
    for (size_t c = 0; c < expected[at].size(); ++c) {
      EXPECT_EQ(row[c], expected[at][c]) << "group " << at << " col " << c;
    }
    ++at;
  });
  EXPECT_EQ(at, expected.size());
}

TEST(PartialOutputsTest, AggregateMergeMatchesSerialPrefix) {
  // Two key columns force the prefix-tree path.
  Schema input = Schema({{"g1", ValueType::kInt64, nullptr},
                         {"g2", ValueType::kInt64, nullptr},
                         {"x", ValueType::kInt64, nullptr}});
  AggSpec agg({{AggFn::kSum, ScalarExpr::Column("x"), "sum_x"},
               {AggFn::kMin, ScalarExpr::Column("x"), "min_x"}});
  auto serial_or = IndexedTable::CreateAggregated(
      {{"g1", ValueType::kInt64, nullptr}, {"g2", ValueType::kInt64, nullptr}},
      agg, input);
  ASSERT_TRUE(serial_or.ok());
  auto serial = std::move(serial_or).value();
  ASSERT_EQ(serial->kind(), IndexedTable::Kind::kPrefix);

  auto merged = serial->CloneEmpty();
  engine::PartialOutputs partials(*merged, 4);

  Rng rng(5);
  for (int i = 0; i < 3000; ++i) {
    uint64_t keys[2] = {
        SlotFromInt64(static_cast<int64_t>(rng.NextBounded(12))),
        SlotFromInt64(static_cast<int64_t>(rng.NextBounded(9)))};
    uint64_t row[3] = {keys[0], keys[1],
                       SlotFromInt64(static_cast<int64_t>(rng.NextBounded(77)))};
    serial->InsertAggregated(keys, row);
    partials.worker(i % 4)->InsertAggregated(keys, row);
  }
  partials.MergeInto(merged.get());

  EXPECT_EQ(merged->num_keys(), serial->num_keys());
  std::vector<std::vector<uint64_t>> expected;
  serial->ScanGroups([&](const uint64_t* row) {
    expected.emplace_back(row, row + serial->schema().num_columns());
  });
  size_t at = 0;
  merged->ScanGroups([&](const uint64_t* row) {
    ASSERT_LT(at, expected.size());
    for (size_t c = 0; c < expected[at].size(); ++c) {
      EXPECT_EQ(row[c], expected[at][c]) << "group " << at << " col " << c;
    }
    ++at;
  });
  EXPECT_EQ(at, expected.size());
}

TEST(PartialOutputsTest, PlainMergeKeepsAllTuples) {
  Schema schema({{"k", ValueType::kInt64, nullptr},
                 {"v", ValueType::kInt64, nullptr}});
  auto final_or = IndexedTable::Create(schema, {"k"});
  ASSERT_TRUE(final_or.ok());
  auto final_table = std::move(final_or).value();
  engine::PartialOutputs partials(*final_table, 2);
  std::multiset<std::pair<int64_t, int64_t>> reference;
  for (int i = 0; i < 1000; ++i) {
    uint64_t row[2] = {SlotFromInt64(i % 50), SlotFromInt64(i)};
    partials.worker(i % 2)->Insert(row);
    reference.emplace(i % 50, i);
  }
  partials.MergeInto(final_table.get());
  EXPECT_EQ(final_table->num_tuples(), 1000u);
  std::multiset<std::pair<int64_t, int64_t>> got;
  int64_t last_key = -1;
  final_table->ScanInOrder([&](const uint64_t* row) {
    int64_t k = Int64FromSlot(row[0]);
    EXPECT_GE(k, last_key);  // still in index order
    last_key = k;
    got.emplace(k, Int64FromSlot(row[1]));
  });
  EXPECT_EQ(got, reference);
}

// ---- key-range-partitioned parallel merge ----------------------------------

// Inserting tuples round-robin into N partials, then merging with the
// partitioned parallel merge, must equal serial insertion — tuples,
// keys, and index order.
TEST(PartialOutputsTest, ParallelMergeMatchesSerialKissPlain) {
  Schema schema({{"k", ValueType::kInt64, nullptr},
                 {"v", ValueType::kInt64, nullptr}});
  auto serial_or = IndexedTable::Create(schema, {"k"});
  ASSERT_TRUE(serial_or.ok());
  auto serial = std::move(serial_or).value();
  ASSERT_EQ(serial->kind(), IndexedTable::Kind::kKiss);
  auto merged = serial->CloneEmpty();

  engine::WorkerPool pool(4);
  engine::PartialOutputs partials(*merged, 3);
  Rng rng(31);
  constexpr int kTuples = 20000;  // above the parallel-merge threshold
  for (int i = 0; i < kTuples; ++i) {
    int64_t k = static_cast<int64_t>(rng.NextBounded(5000));
    uint64_t row[2] = {SlotFromInt64(k), SlotFromInt64(i)};
    serial->Insert(row);
    partials.worker(static_cast<size_t>(i) % 3)->Insert(row);
  }
  size_t merge_morsels = partials.MergeInto(&pool, merged.get());
  EXPECT_GT(merge_morsels, 1u) << "parallel merge did not partition";

  EXPECT_EQ(merged->num_tuples(), serial->num_tuples());
  EXPECT_EQ(merged->num_keys(), serial->num_keys());
  std::multiset<std::pair<int64_t, int64_t>> want, got;
  serial->ScanInOrder([&](const uint64_t* row) {
    want.emplace(Int64FromSlot(row[0]), Int64FromSlot(row[1]));
  });
  int64_t last = -1;
  merged->ScanInOrder([&](const uint64_t* row) {
    int64_t k = Int64FromSlot(row[0]);
    EXPECT_GE(k, last);  // still in ascending index order
    last = k;
    got.emplace(k, Int64FromSlot(row[1]));
  });
  EXPECT_EQ(got, want);
}

TEST(PartialOutputsTest, ParallelMergeMatchesSerialPrefixPlain) {
  // Composite (two-column) key forces the prefix tree; int64 encoding
  // makes every key share a long prefix, so this also exercises the
  // branching-level range planning and the chain pre-build.
  Schema schema({{"k1", ValueType::kInt64, nullptr},
                 {"k2", ValueType::kInt64, nullptr},
                 {"v", ValueType::kInt64, nullptr}});
  auto serial_or = IndexedTable::Create(schema, {"k1", "k2"});
  ASSERT_TRUE(serial_or.ok());
  auto serial = std::move(serial_or).value();
  ASSERT_EQ(serial->kind(), IndexedTable::Kind::kPrefix);
  auto merged = serial->CloneEmpty();

  engine::WorkerPool pool(4);
  engine::PartialOutputs partials(*merged, 4);
  Rng rng(37);
  constexpr int kTuples = 20000;
  for (int i = 0; i < kTuples; ++i) {
    uint64_t row[3] = {
        SlotFromInt64(static_cast<int64_t>(rng.NextBounded(12))),
        SlotFromInt64(static_cast<int64_t>(rng.NextBounded(9))),
        SlotFromInt64(i)};
    serial->Insert(row);
    partials.worker(static_cast<size_t>(i) % 4)->Insert(row);
  }
  size_t merge_morsels = partials.MergeInto(&pool, merged.get());
  EXPECT_GT(merge_morsels, 1u) << "parallel merge did not partition";

  EXPECT_EQ(merged->num_tuples(), serial->num_tuples());
  EXPECT_EQ(merged->num_keys(), serial->num_keys());
  std::multiset<std::vector<int64_t>> want, got;
  serial->ScanInOrder([&](const uint64_t* row) {
    want.insert({Int64FromSlot(row[0]), Int64FromSlot(row[1]),
                 Int64FromSlot(row[2])});
  });
  std::vector<int64_t> last_key;
  merged->ScanInOrder([&](const uint64_t* row) {
    std::vector<int64_t> key{Int64FromSlot(row[0]), Int64FromSlot(row[1])};
    EXPECT_GE(key, last_key);  // ascending composite order preserved
    last_key = key;
    got.insert({key[0], key[1], Int64FromSlot(row[2])});
  });
  EXPECT_EQ(got, want);
}

// ---- aggregated key-range-partitioned parallel merge ------------------------

// Builds an aggregated table with one term of `fn` over "x", keyed on
// "g" (KISS) — used by the identity grid below.
std::unique_ptr<IndexedTable> MakeKissAgg(AggFn fn) {
  Schema input = AggInputSchema();
  auto table_or = IndexedTable::CreateAggregated(
      {{"g", ValueType::kInt64, nullptr}},
      AggSpec({{fn, ScalarExpr::Column("x"), "out"}}), input);
  EXPECT_TRUE(table_or.ok());
  return std::move(table_or).value();
}

std::unique_ptr<IndexedTable> MakePrefixAgg(AggFn fn) {
  Schema input = Schema({{"g1", ValueType::kInt64, nullptr},
                         {"g2", ValueType::kInt64, nullptr},
                         {"x", ValueType::kInt64, nullptr}});
  auto table_or = IndexedTable::CreateAggregated(
      {{"g1", ValueType::kInt64, nullptr}, {"g2", ValueType::kInt64, nullptr}},
      AggSpec({{fn, ScalarExpr::Column("x"), "out"}}), input);
  EXPECT_TRUE(table_or.ok());
  return std::move(table_or).value();
}

void ExpectSameGroups(const IndexedTable& got, const IndexedTable& want,
                      const std::string& label) {
  ASSERT_EQ(got.num_tuples(), want.num_tuples()) << label;
  ASSERT_EQ(got.num_keys(), want.num_keys()) << label;
  std::vector<std::vector<uint64_t>> expected;
  want.ScanGroups([&](const uint64_t* row) {
    expected.emplace_back(row, row + want.schema().num_columns());
  });
  size_t at = 0;
  got.ScanGroups([&](const uint64_t* row) {
    ASSERT_LT(at, expected.size()) << label;
    for (size_t c = 0; c < expected[at].size(); ++c) {
      EXPECT_EQ(row[c], expected[at][c])
          << label << " group " << at << " col " << c;
    }
    ++at;
  });
  EXPECT_EQ(at, expected.size()) << label;
}

// The partitioned aggregated merge must equal the serial accumulator
// merge for every aggregate kind, both index families, and every worker
// count — and must actually partition at 8 workers.
TEST(PartialOutputsTest, AggParallelMergeMatchesSerialAllKindsAndFamilies) {
  constexpr int kRows = 20000;
  constexpr int kGroups = 2000;  // >= kMinParallelAggGroups, many buckets
  for (AggFn fn : {AggFn::kCount, AggFn::kSum, AggFn::kMin, AggFn::kMax}) {
    for (bool kiss : {true, false}) {
      for (size_t threads : {1, 2, 8}) {
        engine::WorkerPool pool(threads);
        auto serial = kiss ? MakeKissAgg(fn) : MakePrefixAgg(fn);
        ASSERT_EQ(serial->kind(), kiss ? IndexedTable::Kind::kKiss
                                       : IndexedTable::Kind::kPrefix);
        auto merged = serial->CloneEmpty();
        engine::PartialOutputs partials(*merged, pool.num_workers());
        Rng rng(fn == AggFn::kCount ? 11 : 12);
        for (int i = 0; i < kRows; ++i) {
          int64_t g = static_cast<int64_t>(rng.NextBounded(kGroups));
          int64_t x = static_cast<int64_t>(rng.NextBounded(100000)) - 50000;
          if (kiss) {
            // Spread the groups over many level-2 buckets.
            uint64_t key = SlotFromInt64(g * 37);
            uint64_t row[2] = {key, SlotFromInt64(x)};
            serial->InsertAggregated(&key, row);
            partials.worker(static_cast<size_t>(i) % pool.num_workers())
                ->InsertAggregated(&key, row);
          } else {
            uint64_t keys[2] = {SlotFromInt64(g / 40), SlotFromInt64(g % 40)};
            uint64_t row[3] = {keys[0], keys[1], SlotFromInt64(x)};
            serial->InsertAggregated(keys, row);
            partials.worker(static_cast<size_t>(i) % pool.num_workers())
                ->InsertAggregated(keys, row);
          }
        }
        size_t merge_morsels = partials.MergeInto(&pool, merged.get());
        std::string label = std::string(AggFnToString(fn)) +
                            (kiss ? " kiss" : " prefix") + " t=" +
                            std::to_string(threads);
        if (threads >= 8) {
          EXPECT_GT(merge_morsels, 1u)
              << label << ": aggregated merge did not partition";
        }
        ExpectSameGroups(*merged, *serial, label);
      }
    }
  }
}

// Partials whose key spans do not overlap at all (one worker saw only
// low keys, another only high keys) still merge correctly — the range
// plan covers the union span, and the clamped outer bounds keep the
// destination's key statistics exact.
TEST(PartialOutputsTest, ParallelMergeHandlesDisjointPartialSpans) {
  Schema schema({{"k", ValueType::kInt64, nullptr},
                 {"v", ValueType::kInt64, nullptr}});
  auto serial_or = IndexedTable::Create(schema, {"k"});
  ASSERT_TRUE(serial_or.ok());
  auto serial = std::move(serial_or).value();
  auto merged = serial->CloneEmpty();

  engine::WorkerPool pool(4);
  engine::PartialOutputs partials(*merged, 2);
  constexpr int kTuplesPerSide = 10000;
  for (int i = 0; i < kTuplesPerSide; ++i) {
    // Partial 0: keys [3, 103); partial 1: keys [4000003, 4000103).
    int64_t lo_key = 3 + (i % 100);
    int64_t hi_key = 4000003 + (i % 100);
    uint64_t lo_row[2] = {SlotFromInt64(lo_key), SlotFromInt64(i)};
    uint64_t hi_row[2] = {SlotFromInt64(hi_key), SlotFromInt64(i)};
    serial->Insert(lo_row);
    serial->Insert(hi_row);
    partials.worker(0)->Insert(lo_row);
    partials.worker(1)->Insert(hi_row);
  }
  size_t merge_morsels = partials.MergeInto(&pool, merged.get());
  EXPECT_GT(merge_morsels, 1u);
  EXPECT_EQ(merged->num_tuples(), serial->num_tuples());
  EXPECT_EQ(merged->num_keys(), serial->num_keys());
  // Clamped outer range bounds keep min/max exact (not bucket-aligned).
  EXPECT_EQ(merged->kiss()->min_key(), serial->kiss()->min_key());
  EXPECT_EQ(merged->kiss()->max_key(), serial->kiss()->max_key());
  std::multiset<std::pair<int64_t, int64_t>> want, got;
  serial->ScanInOrder([&](const uint64_t* row) {
    want.emplace(Int64FromSlot(row[0]), Int64FromSlot(row[1]));
  });
  merged->ScanInOrder([&](const uint64_t* row) {
    got.emplace(Int64FromSlot(row[0]), Int64FromSlot(row[1]));
  });
  EXPECT_EQ(got, want);
}

// ---- Release-mode merge hardening (non-covering range plans) ----------------

// Clears the test-only plan mutator on scope exit so a failing test
// cannot poison later ones.
struct PlanMutatorGuard {
  explicit PlanMutatorGuard(engine::PartialOutputs::PlanMutator m) {
    engine::PartialOutputs::SetPlanMutatorForTest(std::move(m));
  }
  ~PlanMutatorGuard() {
    engine::PartialOutputs::SetPlanMutatorForTest(nullptr);
  }
};

// A range plan with a hole (a middle range dropped) must be rejected by
// the runtime coverage check — the merge falls back to the serial path
// (returns 0 shards) and the result stays complete. This used to be a
// Debug-only assert that compiled out in Release.
TEST(PartialOutputsTest, NonCoveringKissPlanFallsBackToSerialMerge) {
  Schema schema({{"k", ValueType::kInt64, nullptr},
                 {"v", ValueType::kInt64, nullptr}});
  auto serial_or = IndexedTable::Create(schema, {"k"});
  ASSERT_TRUE(serial_or.ok());
  auto serial = std::move(serial_or).value();
  auto merged = serial->CloneEmpty();

  engine::WorkerPool pool(4);
  engine::PartialOutputs partials(*merged, 3);
  Rng rng(47);
  constexpr int kTuples = 20000;
  for (int i = 0; i < kTuples; ++i) {
    int64_t k = static_cast<int64_t>(rng.NextBounded(5000));
    uint64_t row[2] = {SlotFromInt64(k), SlotFromInt64(i)};
    serial->Insert(row);
    partials.worker(static_cast<size_t>(i) % 3)->Insert(row);
  }
  PlanMutatorGuard guard(
      [](std::vector<IndexedTable::MergeKeyRange>* ranges) {
        if (ranges->size() > 2) ranges->erase(ranges->begin() + 1);
      });
  EXPECT_EQ(partials.MergeInto(&pool, merged.get()), 0u)
      << "non-covering plan must fall back to the serial merge";
  EXPECT_EQ(merged->num_tuples(), serial->num_tuples());
  EXPECT_EQ(merged->num_keys(), serial->num_keys());
  std::multiset<std::pair<int64_t, int64_t>> want, got;
  serial->ScanInOrder([&](const uint64_t* row) {
    want.emplace(Int64FromSlot(row[0]), Int64FromSlot(row[1]));
  });
  merged->ScanInOrder([&](const uint64_t* row) {
    got.emplace(Int64FromSlot(row[0]), Int64FromSlot(row[1]));
  });
  EXPECT_EQ(got, want);
}

// Same hardening for prefix-tree outputs: a truncated last range (the
// plan no longer reaches the union max key) is rejected at runtime.
TEST(PartialOutputsTest, NonCoveringPrefixPlanFallsBackToSerialMerge) {
  Schema schema({{"k1", ValueType::kInt64, nullptr},
                 {"k2", ValueType::kInt64, nullptr},
                 {"v", ValueType::kInt64, nullptr}});
  auto serial_or = IndexedTable::Create(schema, {"k1", "k2"});
  ASSERT_TRUE(serial_or.ok());
  auto serial = std::move(serial_or).value();
  ASSERT_EQ(serial->kind(), IndexedTable::Kind::kPrefix);
  auto merged = serial->CloneEmpty();

  engine::WorkerPool pool(4);
  engine::PartialOutputs partials(*merged, 4);
  Rng rng(53);
  constexpr int kTuples = 20000;
  for (int i = 0; i < kTuples; ++i) {
    uint64_t row[3] = {
        SlotFromInt64(static_cast<int64_t>(rng.NextBounded(12))),
        SlotFromInt64(static_cast<int64_t>(rng.NextBounded(9))),
        SlotFromInt64(i)};
    serial->Insert(row);
    partials.worker(static_cast<size_t>(i) % 4)->Insert(row);
  }
  PlanMutatorGuard guard(
      [](std::vector<IndexedTable::MergeKeyRange>* ranges) {
        if (!ranges->empty()) ranges->pop_back();
      });
  EXPECT_EQ(partials.MergeInto(&pool, merged.get()), 0u)
      << "truncated plan must fall back to the serial merge";
  EXPECT_EQ(merged->num_tuples(), serial->num_tuples());
  EXPECT_EQ(merged->num_keys(), serial->num_keys());
  std::multiset<std::vector<int64_t>> want, got;
  serial->ScanInOrder([&](const uint64_t* row) {
    want.insert({Int64FromSlot(row[0]), Int64FromSlot(row[1]),
                 Int64FromSlot(row[2])});
  });
  merged->ScanInOrder([&](const uint64_t* row) {
    got.insert({Int64FromSlot(row[0]), Int64FromSlot(row[1]),
                Int64FromSlot(row[2])});
  });
  EXPECT_EQ(got, want);
}

// The coverage validators themselves: gaps, inversions, truncations.
TEST(MergeRangeValidationTest, DetectsGapsAndTruncations) {
  using engine::merge_detail::KissRangesCoverSpan;
  std::vector<IndexedTable::MergeKeyRange> ranges(3);
  ranges[0].kiss_lo = 10;
  ranges[0].kiss_hi = 63;
  ranges[1].kiss_lo = 64;
  ranges[1].kiss_hi = 127;
  ranges[2].kiss_lo = 128;
  ranges[2].kiss_hi = 200;
  EXPECT_TRUE(KissRangesCoverSpan(ranges, 10, 200));
  EXPECT_FALSE(KissRangesCoverSpan(ranges, 5, 200));    // span starts below
  EXPECT_FALSE(KissRangesCoverSpan(ranges, 10, 300));   // span ends above
  auto gap = ranges;
  gap.erase(gap.begin() + 1);
  EXPECT_FALSE(KissRangesCoverSpan(gap, 10, 200));      // hole in the tiling
  auto inverted = ranges;
  std::swap(inverted[1].kiss_lo, inverted[1].kiss_hi);
  EXPECT_FALSE(KissRangesCoverSpan(inverted, 10, 200));
  EXPECT_FALSE(KissRangesCoverSpan({}, 0, 0));
}

TEST(PartialOutputsTest, ParallelMergeFallsBackWhenSerialIsRight) {
  engine::WorkerPool pool(4);
  // Aggregated output with only a handful of groups: the accumulator
  // merge is per-group work, so it stays serial below the threshold.
  Schema input = AggInputSchema();
  auto agg_or = IndexedTable::CreateAggregated(
      {{"g", ValueType::kInt64, nullptr}}, FullAggSpec(), input);
  ASSERT_TRUE(agg_or.ok());
  auto agg = std::move(agg_or).value();
  engine::PartialOutputs agg_partials(*agg, 2);
  for (int i = 0; i < 10000; ++i) {
    uint64_t g = SlotFromInt64(i % 7);
    uint64_t row[2] = {g, SlotFromInt64(i)};
    agg_partials.worker(static_cast<size_t>(i) % 2)->InsertAggregated(&g,
                                                                      row);
  }
  EXPECT_EQ(agg_partials.MergeInto(&pool, agg.get()), 0u);
  EXPECT_EQ(agg->num_keys(), 7u);

  // Small plain output: below the threshold, stays serial.
  Schema schema({{"k", ValueType::kInt64, nullptr}});
  auto small_or = IndexedTable::Create(schema, {"k"});
  ASSERT_TRUE(small_or.ok());
  auto small = std::move(small_or).value();
  engine::PartialOutputs small_partials(*small, 2);
  for (int i = 0; i < 100; ++i) {
    uint64_t row[1] = {SlotFromInt64(i)};
    small_partials.worker(static_cast<size_t>(i) % 2)->Insert(row);
  }
  EXPECT_EQ(small_partials.MergeInto(&pool, small.get()), 0u);
  EXPECT_EQ(small->num_tuples(), 100u);
}

// ---- adaptive morsel sizing -------------------------------------------------

TEST(MorselTunerTest, RefinesOnSkewUpToTheClamp) {
  engine::MorselTuner tuner;
  EXPECT_EQ(tuner.per_worker(), engine::MorselTuner::kBasePerWorker);
  // One straggler morsel >2x the median: split finer, doubling each
  // batch until the clamp.
  size_t prev = tuner.per_worker();
  for (int round = 0; round < 10; ++round) {
    std::vector<double> skewed{1.0, 1.0, 1.0, 1.0, 10.0};
    tuner.RecordBatch(&skewed);
    EXPECT_GE(tuner.per_worker(), prev);
    prev = tuner.per_worker();
  }
  EXPECT_EQ(tuner.per_worker(), engine::MorselTuner::kMaxPerWorker);
  EXPECT_GT(tuner.refines(), 0u);
  EXPECT_EQ(tuner.MorselTarget(4), 4 * engine::MorselTuner::kMaxPerWorker);
}

TEST(MorselTunerTest, CoarsensOnTinyUniformMorsels) {
  engine::MorselTuner tuner;
  for (int round = 0; round < 10; ++round) {
    std::vector<double> tiny(16, 0.001);
    tuner.RecordBatch(&tiny);
  }
  EXPECT_EQ(tuner.per_worker(), engine::MorselTuner::kMinPerWorker);
  EXPECT_GT(tuner.coarsens(), 0u);
}

TEST(MorselTunerTest, BalancedBatchesLeaveTheSplitAlone) {
  engine::MorselTuner tuner;
  std::vector<double> balanced{1.0, 1.1, 0.9, 1.0};
  tuner.RecordBatch(&balanced);
  EXPECT_EQ(tuner.per_worker(), engine::MorselTuner::kBasePerWorker);
  // Degenerate batches carry no signal.
  std::vector<double> one{5.0};
  tuner.RecordBatch(&one);
  std::vector<double> none;
  tuner.RecordBatch(&none);
  EXPECT_EQ(tuner.per_worker(), engine::MorselTuner::kBasePerWorker);
}

// Regression for pool-global tuner pollution: two interleaved queries
// with opposite morsel cost profiles (one skewed — wants finer splits;
// one uniform-tiny — wants coarser) must tune independently. With one
// pool-global feedback loop the alternating signals fight each other
// and neither site converges.
TEST(MorselTunerTest, InterleavedSitesTuneIndependently) {
  engine::WorkerPool pool(2);
  std::shared_ptr<engine::MorselTuner> heavy =
      pool.TunerFor("join:heavy_query");
  std::shared_ptr<engine::MorselTuner> tiny = pool.TunerFor("sel:tiny_query");
  ASSERT_NE(heavy, tiny);
  // Same site name resolves to the same feedback loop.
  EXPECT_EQ(heavy, pool.TunerFor("join:heavy_query"));
  EXPECT_EQ(pool.num_tuner_sites(), 2u);

  for (int round = 0; round < 10; ++round) {
    // Interleave the two queries' batches, as concurrent admission does.
    std::vector<double> skewed{1.0, 1.0, 1.0, 1.0, 10.0};
    heavy->RecordBatch(&skewed);
    std::vector<double> uniform_tiny(16, 0.001);
    tiny->RecordBatch(&uniform_tiny);
  }
  EXPECT_EQ(heavy->per_worker(), engine::MorselTuner::kMaxPerWorker)
      << "skewed site failed to refine — polluted by the tiny site?";
  EXPECT_EQ(tiny->per_worker(), engine::MorselTuner::kMinPerWorker)
      << "tiny site failed to coarsen — polluted by the skewed site?";
  // The pool's default tuner saw none of it.
  EXPECT_EQ(pool.tuner()->per_worker(), engine::MorselTuner::kBasePerWorker);
}

// The tuner feedback is wired into the drivers: a skewed key
// distribution (one giant duplicate chain) refines the pool's split.
TEST(MorselTunerTest, DriverFeedbackRefinesPoolTarget) {
  engine::WorkerPool pool(2);
  size_t before = pool.tuner()->per_worker();
  KissTree tree;
  size_t l2 = tree.level2_bits();
  // 64 buckets; bucket 0 holds 64x the work of the others.
  for (uint32_t b = 0; b < 64; ++b) {
    for (uint32_t i = 0; i < (b == 0 ? 6400u : 100u); ++i) {
      tree.Insert(static_cast<uint32_t>(b << l2) + (i % 8), i);
    }
  }
  std::atomic<uint64_t> seen{0};
  for (int round = 0; round < 20; ++round) {
    engine::RunKissRangeMorsels(
        &pool, pool.tuner(), tree, 0, 0xFFFFFFFFu,
        [&](size_t, uint32_t lo, uint32_t hi) {
          tree.ScanRange(lo, hi,
                         [&](uint32_t, const KissTree::ValueRef& vals) {
                           // Simulate per-tuple work so the skew is
                           // measurable on a fast machine.
                           vals.ForEach([&](uint64_t v) {
                             seen.fetch_add(v, std::memory_order_relaxed);
                           });
                         });
        });
    if (pool.tuner()->per_worker() > before) break;
  }
  // The refinement is timing-dependent; what must ALWAYS hold is that
  // the tuner never leaves its clamp range and the scan stays correct.
  EXPECT_GE(pool.tuner()->per_worker(), engine::MorselTuner::kMinPerWorker);
  EXPECT_LE(pool.tuner()->per_worker(), engine::MorselTuner::kMaxPerWorker);
}

// ---- session front door: shared-scan reads ---------------------------------

class SessionReadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema schema({{"k", ValueType::kInt64, nullptr},
                   {"v", ValueType::kInt64, nullptr}});
    auto table_or = IndexedTable::Create(schema, {"k"});
    ASSERT_TRUE(table_or.ok());
    table_ = std::move(table_or).value();
    Rng rng(21);
    for (int i = 0; i < 20000; ++i) {
      int64_t k = static_cast<int64_t>(rng.NextBounded(2000));
      uint64_t row[2] = {SlotFromInt64(k), SlotFromInt64(i)};
      table_->Insert(row);
      reference_[k].insert(static_cast<uint64_t>(i));
    }
  }

  // Resolves returned tuple ids to the "v" column for comparison.
  std::multiset<uint64_t> Resolve(const std::vector<uint64_t>& ids) {
    std::multiset<uint64_t> out;
    for (uint64_t id : ids) {
      out.insert(static_cast<uint64_t>(Int64FromSlot(table_->Tuple(id)[1])));
    }
    return out;
  }

  std::unique_ptr<IndexedTable> table_;
  std::map<int64_t, std::multiset<uint64_t>> reference_;
};

TEST_F(SessionReadTest, ConcurrentPointReadsMatchReference) {
  engine::EngineConfig cfg;
  cfg.threads = 2;
  cfg.clamp_threads_to_hardware = false;  // tiny CI boxes
  cfg.read_batch_window_us = 500;
  engine::EngineRunner runner(cfg);
  constexpr size_t kClients = 8;
  constexpr size_t kReadsPerClient = 200;
  std::atomic<int> mismatches{0};
  ForkJoin fork(kClients);
  for (size_t c = 0; c < kClients; ++c) {
    fork.Spawn([&, c] {
      auto session = runner.OpenSession();
      Rng rng(1000 + c);
      for (size_t i = 0; i < kReadsPerClient; ++i) {
        int64_t key = static_cast<int64_t>(rng.NextBounded(2200));
        auto ids = session.PointRead(*table_, key);
        if (!ids.ok()) {
          mismatches++;
          continue;
        }
        auto it = reference_.find(key);
        std::multiset<uint64_t> want =
            it == reference_.end() ? std::multiset<uint64_t>{} : it->second;
        if (Resolve(*ids) != want) mismatches++;
      }
    });
  }
  fork.Join();
  EXPECT_EQ(mismatches.load(), 0);
  auto rs = runner.read_stats();
  EXPECT_EQ(rs.reads, kClients * kReadsPerClient);
  EXPECT_EQ(rs.batched_keys, kClients * kReadsPerClient);
  EXPECT_GT(rs.shared_scans, 0u);
  // Batching must never *increase* the scan count beyond one per read.
  EXPECT_LE(rs.shared_scans, rs.reads);
}

TEST_F(SessionReadTest, RangeReadsAscendAndMatchReference) {
  engine::EngineRunner runner(engine::EngineConfig{.threads = 1});
  auto session = runner.OpenSession();
  auto result = session.RangeRead(*table_, 100, 140);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const std::vector<uint64_t>& ids = *result;
  std::multiset<uint64_t> want;
  for (int64_t k = 100; k <= 140; ++k) {
    auto it = reference_.find(k);
    if (it != reference_.end()) {
      for (uint64_t v : it->second) want.insert(v);
    }
  }
  EXPECT_EQ(Resolve(ids), want);
  // Ascending key order across the returned ids.
  int64_t last = -1;
  for (uint64_t id : ids) {
    int64_t k = Int64FromSlot(table_->Tuple(id)[0]);
    EXPECT_GE(k, last);
    last = k;
  }
  // Degenerate inputs.
  EXPECT_TRUE(session.RangeRead(*table_, 50, 40)->empty());
  EXPECT_TRUE(session.PointRead(*table_, 999999)->empty());
}

TEST_F(SessionReadTest, ReleaseReadsEvictsBatcherAndLaterReadsStillWork) {
  engine::EngineRunner runner(engine::EngineConfig{.threads = 1});
  int64_t key = reference_.begin()->first;
  auto before = runner.PointRead(*table_, key);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(Resolve(*before), reference_[key]);

  // Evict the per-table batcher (the short-lived-intermediate pattern):
  // the next read must build a fresh one and answer identically.
  runner.ReleaseReads(*table_);
  auto after = runner.PointRead(*table_, key);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(Resolve(*after), reference_[key]);

  // Releasing an unknown / already-released table is a no-op.
  runner.ReleaseReads(*table_);
  auto rs = runner.read_stats();
  EXPECT_EQ(rs.reads, 2u);
  EXPECT_EQ(rs.batched_keys, 2u);
}

// ---- admission control ------------------------------------------------------

// Blocks inside Execute until released, so the test can observe the
// admission semaphore holding the second query back.
class GateOp : public Operator {
 public:
  GateOp(std::atomic<int>* started, std::atomic<bool>* release)
      : started_(started), release_(release) {}
  std::string name() const override { return "gate"; }
  Status Execute(ExecContext* ctx) override {
    started_->fetch_add(1);
    while (!release_->load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    Schema schema({{"k", ValueType::kInt64, nullptr}});
    QPPT_ASSIGN_OR_RETURN(auto table, IndexedTable::Create(schema, {"k"}));
    QPPT_RETURN_NOT_OK(ctx->Put("result", std::move(table)));
    return Status::OK();
  }

 private:
  std::atomic<int>* started_;
  std::atomic<bool>* release_;
};

TEST(AdmissionControlTest, ExcessQueriesBlockUntilASlotFrees) {
  engine::EngineConfig cfg;
  cfg.threads = 1;
  cfg.max_concurrent_queries = 1;
  engine::EngineRunner runner(cfg);
  Database db;
  std::atomic<int> started{0};
  std::atomic<bool> release{false};
  std::atomic<int> succeeded{0};

  auto make_plan = [&] {
    Plan plan;
    plan.Add(std::make_unique<GateOp>(&started, &release));
    plan.set_result_slot("result");
    return plan;
  };
  Plan plan1 = make_plan();
  Plan plan2 = make_plan();

  std::thread first([&] {
    if (runner.Execute(db, plan1, PlanKnobs{}).ok()) succeeded++;
  });
  while (started.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::thread second([&] {
    if (runner.Execute(db, plan2, PlanKnobs{}).ok()) succeeded++;
  });
  // The second query must park on the semaphore, not start executing.
  for (int i = 0; i < 5000 && runner.queries_waiting() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(runner.queries_waiting(), 1u);
  EXPECT_EQ(started.load(), 1);

  release = true;
  first.join();
  second.join();
  EXPECT_EQ(started.load(), 2);
  EXPECT_EQ(succeeded.load(), 2);
  EXPECT_EQ(runner.queries_waiting(), 0u);
  EXPECT_EQ(runner.queries_admitted(), 2u);
}

TEST(AdmissionControlTest, UnlimitedByDefault) {
  engine::EngineConfig cfg;
  cfg.threads = 1;
  engine::EngineRunner runner(cfg);
  EXPECT_EQ(runner.queries_waiting(), 0u);
}

}  // namespace
}  // namespace qppt
