// engine_server — the engine layer as an in-process "database server".
//
// Simulates the deployment the engine was built for: one EngineRunner
// (fixed morsel worker pool) admitting a mixed workload from several
// client threads at once —
//   * OLAP clients running *prepared* SSB queries through QuerySessions
//     (planned once at startup, cached plans shared across clients), and
//   * lookup clients hammering point/range reads against a materialized
//     indexed table, answered by batched shared synchronous scans.
//
// After the workload the materialized table's read batcher is evicted
// with ReleaseReads — the pattern for serving reads from short-lived
// intermediates.
//
// Usage: ./engine_server [scale_factor] [workers] [clients]
//        (defaults: 0.05, hardware threads, 4)

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/parallel.h"
#include "core/query/planner.h"
#include "core/query/query_spec.h"
#include "engine/session.h"
#include "obs/metrics.h"
#include "ssb/dbgen.h"
#include "ssb/queries_qppt.h"

using namespace qppt;

int main(int argc, char** argv) {
  double sf = argc > 1 ? std::atof(argv[1]) : 0.05;
  size_t workers = argc > 2 ? static_cast<size_t>(std::atoi(argv[2]))
                            : std::thread::hardware_concurrency();
  size_t clients = argc > 3 ? static_cast<size_t>(std::atoi(argv[3])) : 4;

  std::printf("generating SSB data at SF=%.2f ...\n", sf);
  ssb::SsbConfig cfg;
  cfg.scale_factor = sf;
  cfg.seed = 7;
  auto data_or = ssb::Generate(cfg);
  if (!data_or.ok()) {
    std::fprintf(stderr, "%s\n", data_or.status().ToString().c_str());
    return 1;
  }
  auto data = std::move(data_or).value();

  engine::EngineConfig engine_cfg;
  engine_cfg.threads = workers;
  engine::EngineRunner runner(engine_cfg);
  std::printf("engine up: %zu morsel workers, %zu clients\n",
              runner.threads(), clients);

  // Materialize a lineorder slice keyed on lo_orderdate once — a
  // dimension-free query spec (full scan, indexed by day); the lookup
  // clients then serve "order activity on day X" reads from it.
  query::QueryBuilder mb("server.by_date");
  mb.From("lineorder")
      .FactIndex("lo_discount")
      .FactColumns({"lo_orderdate", "lo_extendedprice"})
      .GroupBy({"lo_orderdate"})
      .ResultSlot("by_date");
  auto mat_plan = query::PlanQuery(data->db, std::move(mb).Build(),
                                   PlanKnobs{});
  if (!mat_plan.ok()) {
    std::fprintf(stderr, "%s\n", mat_plan.status().ToString().c_str());
    return 1;
  }
  ExecContext mat_ctx(&data->db);
  if (auto st = mat_plan->Run(&mat_ctx); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const IndexedTable* by_date = mat_ctx.Get("by_date").value();
  std::printf("materialized by_date: %zu tuples, %zu distinct days\n\n",
              by_date->num_tuples(), by_date->num_keys());

  // Prepare the OLAP flight once; every client executes the shared
  // cached plans (no replanning on the hot path).
  const std::vector<std::string> olap_ids = {"1.1", "2.1", "3.1", "4.1"};
  std::vector<engine::PreparedQuery> prepared;
  for (const auto& id : olap_ids) {
    auto spec = ssb::BuildQuerySpec(*data, id);
    if (!spec.ok()) {
      std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
      return 1;
    }
    auto p = runner.Prepare(data->db, std::move(spec).value());
    if (!p.ok()) {
      std::fprintf(stderr, "%s\n", p.status().ToString().c_str());
      return 1;
    }
    prepared.push_back(std::move(p).value());
  }

  // Mixed workload: even client ids run OLAP flights, odd ids run lookups.
  ForkJoin fork(clients);
  std::vector<std::string> reports(clients);
  for (size_t c = 0; c < clients; ++c) {
    fork.Spawn([&, c] {
      auto session = runner.OpenSession();
      char buf[160];
      if (c % 2 == 0) {
        for (size_t q = 0; q < olap_ids.size(); ++q) {
          const std::string& id = olap_ids[q];
          PlanStats stats;
          auto result = session.Execute(prepared[q], {}, PlanKnobs{}, &stats);
          if (!result.ok()) return;
          std::snprintf(buf, sizeof(buf),
                        "  client %zu: Q%s -> %4zu rows  %7.2f ms  "
                        "%3llu morsels\n",
                        c, id.c_str(), result->rows.size(), stats.wall_ms,
                        static_cast<unsigned long long>(stats.TotalMorsels()));
          reports[c] += buf;
        }
      } else {
        uint64_t hits = 0;
        size_t reads = 400;
        for (size_t i = 0; i < reads; ++i) {
          // A valid d_datekey: y*10000 + m*100 + d in the SSB domain.
          int64_t day = (1992 + static_cast<int64_t>(i % 7)) * 10000 +
                        (1 + static_cast<int64_t>((i / 7) % 12)) * 100 +
                        (1 + static_cast<int64_t>((c + i) % 28));
          auto ids = session.PointRead(*by_date, day);
          if (!ids.ok()) return;
          hits += ids->size();
        }
        std::snprintf(buf, sizeof(buf),
                      "  client %zu: %zu point reads -> %llu order rows\n",
                      c, reads, static_cast<unsigned long long>(hits));
        reports[c] += buf;
      }
    });
  }
  fork.Join();

  std::printf("workload report:\n");
  for (const auto& r : reports) std::printf("%s", r.c_str());
  auto rs = runner.read_stats();
  uint64_t cache_hits = 0;
  for (const auto& p : prepared) cache_hits += p.plan_cache_hits();
  std::printf("\nengine totals: %llu queries admitted (%llu plan-cache "
              "hits), %llu reads answered by %llu shared scans "
              "(%.1f reads/scan)\n",
              static_cast<unsigned long long>(runner.queries_admitted()),
              static_cast<unsigned long long>(cache_hits),
              static_cast<unsigned long long>(rs.reads),
              static_cast<unsigned long long>(rs.shared_scans),
              rs.shared_scans > 0 ? static_cast<double>(rs.batched_keys) /
                                        static_cast<double>(rs.shared_scans)
                                  : 0.0);

  // The same numbers (and much more: steal counts, admission waits,
  // per-worker busy time) are in the global metrics registry — dump the
  // Prometheus-text view a scrape endpoint would serve.
  std::printf("\nmetrics snapshot:\n%s",
              obs::MetricsRegistry::Global().Snapshot()
                  .ToPrometheusText().c_str());

  // by_date is about to go out of scope with mat_ctx: evict its read
  // batcher so the runner holds no dangling table reference.
  runner.ReleaseReads(*by_date);
  return 0;
}
