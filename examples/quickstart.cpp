// Quickstart: the indexed table-at-a-time model in ~80 lines.
//
// Builds a tiny orders/products star, creates partially clustered base
// indexes, and runs "total amount per category for gadget-priced
// products" as a QPPT plan: one selection + one 2-way join-group whose
// output index both groups and sorts as a side effect.
//
//   ./examples/quickstart

#include <cstdint>
#include <cstdio>
#include <memory>

#include "core/operators/selection.h"
#include "core/operators/star_join.h"
#include "core/plan.h"
#include "util/rng.h"

using namespace qppt;

int main() {
  // 1. A row-store with two tables.
  Database db;
  {
    Schema schema({{"product_id", ValueType::kInt64, nullptr},
                   {"category", ValueType::kInt64, nullptr},
                   {"price", ValueType::kInt64, nullptr}});
    auto products = std::make_unique<RowTable>(schema, "products");
    Rng rng(1);
    for (int64_t id = 0; id < 1000; ++id) {
      uint64_t row[3] = {SlotFromInt64(id),
                         SlotFromInt64(static_cast<int64_t>(id % 10)),
                         SlotFromInt64(static_cast<int64_t>(
                             10 + rng.NextBounded(90)))};
      products->AppendRow(row);
    }
    if (auto st = db.AddTable(std::move(products)); !st.ok()) return 1;
  }
  {
    Schema schema({{"product_id", ValueType::kInt64, nullptr},
                   {"amount", ValueType::kInt64, nullptr}});
    auto orders = std::make_unique<RowTable>(schema, "orders");
    Rng rng(2);
    for (int i = 0; i < 100000; ++i) {
      uint64_t row[2] = {
          SlotFromInt64(static_cast<int64_t>(rng.NextBounded(1000))),
          SlotFromInt64(static_cast<int64_t>(1 + rng.NextBounded(5)))};
      orders->AppendRow(row);
    }
    if (auto st = db.AddTable(std::move(orders)); !st.ok()) return 1;
  }

  // 2. Base indexes: the data pool QPPT plans start from. Partially
  //    clustered: the payload carries the columns later operators need.
  if (!db.BuildIndex("products_by_price", "products", {"price"},
                     {"product_id", "category"})
           .ok() ||
      !db.BuildIndex("orders_by_product", "orders", {"product_id"},
                     {"amount"})
           .ok()) {
    return 1;
  }

  // 3. The plan: select products priced 40..60 (output indexed on
  //    product_id — what the join wants), then join orders and aggregate
  //    per category. Grouping and ordering fall out of the output index.
  Plan plan;
  SelectionSpec sel;
  sel.input_index = "products_by_price";
  sel.predicate = KeyPredicate::Range(40, 60);
  sel.carry_columns = {"product_id", "category"};
  sel.output = {"gadgets", {"product_id"}, {}};
  plan.Emplace<SelectionOp>(sel);

  StarJoinSpec join;
  join.left = SideRef::Base("orders_by_product");
  join.left_columns = {"amount"};
  join.right = SideRef::Slot("gadgets");
  join.right_columns = {"category"};
  AggSpec agg({{AggFn::kSum, ScalarExpr::Column("amount"), "total_amount"},
               {AggFn::kCount, {}, "orders"}});
  join.output = {"result", {"category"}, agg};
  plan.Emplace<StarJoinOp>(join);
  plan.set_result_slot("result");

  // 4. Execute and print.
  ExecContext ctx(&db);
  auto result = plan.Execute(&ctx);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", result->ToString().c_str());
  std::printf("--- per-operator statistics ---\n%s",
              ctx.stats()->ToString().c_str());
  return 0;
}
