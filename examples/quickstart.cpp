// Quickstart: the declarative query API in ~80 lines.
//
// Builds a tiny orders/products star, creates partially clustered base
// indexes, and asks "total amount per category for gadget-priced
// products" through QueryBuilder. The rule-based planner turns the spec
// into a QPPT plan — one selection + one 2-way join-group whose output
// index both groups and sorts as a side effect — and ExplainPlan shows
// exactly what will run.
//
//   ./examples/quickstart

#include <cstdint>
#include <cstdio>
#include <memory>

#include "core/plan.h"
#include "core/query/planner.h"
#include "core/query/query_spec.h"
#include "util/rng.h"

using namespace qppt;

int main() {
  // 1. A row-store with two tables.
  Database db;
  {
    Schema schema({{"product_id", ValueType::kInt64, nullptr},
                   {"category", ValueType::kInt64, nullptr},
                   {"price", ValueType::kInt64, nullptr}});
    auto products = std::make_unique<RowTable>(schema, "products");
    Rng rng(1);
    for (int64_t id = 0; id < 1000; ++id) {
      uint64_t row[3] = {SlotFromInt64(id),
                         SlotFromInt64(static_cast<int64_t>(id % 10)),
                         SlotFromInt64(static_cast<int64_t>(
                             10 + rng.NextBounded(90)))};
      products->AppendRow(row);
    }
    if (auto st = db.AddTable(std::move(products)); !st.ok()) return 1;
  }
  {
    Schema schema({{"product_id", ValueType::kInt64, nullptr},
                   {"amount", ValueType::kInt64, nullptr}});
    auto orders = std::make_unique<RowTable>(schema, "orders");
    Rng rng(2);
    for (int i = 0; i < 100000; ++i) {
      uint64_t row[2] = {
          SlotFromInt64(static_cast<int64_t>(rng.NextBounded(1000))),
          SlotFromInt64(static_cast<int64_t>(1 + rng.NextBounded(5)))};
      orders->AppendRow(row);
    }
    if (auto st = db.AddTable(std::move(orders)); !st.ok()) return 1;
  }

  // 2. Base indexes: the data pool QPPT plans start from. Partially
  //    clustered: the payload carries the columns later operators need.
  if (!db.BuildIndex("products_by_price", "products", {"price"},
                     {"product_id", "category"})
           .ok() ||
      !db.BuildIndex("orders_by_product", "orders", {"product_id"},
                     {"amount"})
           .ok()) {
    return 1;
  }

  // 3. The query, declaratively: products priced 40..60 are the filtered
  //    dimension, orders the fact side, grouped per category. The planner
  //    picks the selection output key, the join wiring, and the ORDER-BY
  //    strategy (free, via the output index).
  query::QueryBuilder b("quickstart.gadgets");
  b.From("orders").FactIndex("orders_by_product").FactColumns({"amount"});
  b.Dim("gadgets")
      .Select("products_by_price", KeyPredicate::Range(40, 60))
      .Key("product_id")
      .ProbeFrom("product_id")
      .Carry({"category"})
      .Slot("gadgets");
  b.GroupBy({"category"})
      .Aggregate(AggFn::kSum, ScalarExpr::Column("amount"), "total_amount")
      .Aggregate(AggFn::kCount, {}, "orders")
      .OrderBy("category");
  query::QuerySpec spec = std::move(b).Build();

  // 4. Inspect the plan, then execute and print.
  auto explain = query::ExplainPlan(db, spec, PlanKnobs{});
  if (!explain.ok()) {
    std::fprintf(stderr, "%s\n", explain.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", explain->c_str());

  auto plan = query::PlanQuery(db, spec, PlanKnobs{});
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 1;
  }
  ExecContext ctx(&db);
  auto result = plan->Execute(&ctx);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", result->ToString().c_str());
  std::printf("--- per-operator statistics ---\n%s",
              ctx.stats()->ToString().c_str());
  return 0;
}
