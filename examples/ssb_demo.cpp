// The CIDR demonstrator (paper appendix A), terminal edition.
//
// Runs one SSB query on the QPPT engine with the demonstrator's
// optimization knobs and prints the generated plan's per-operator
// execution statistics (time split, output index type/size/cardinality),
// then the result rows.
//
//   ./examples/ssb_demo [query] [--sf=0.1] [--no-select-join]
//                       [--buffer=512] [--ways=N]
//   ./examples/ssb_demo 2.3 --sf=0.2 --buffer=64

#include <cstdio>
#include <cstring>
#include <string>

#include "core/query/planner.h"
#include "ssb/queries_qppt.h"

using namespace qppt;

int main(int argc, char** argv) {
  std::string query = "2.3";
  double sf = 0.1;
  PlanKnobs knobs;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--sf=", 0) == 0) {
      sf = std::stod(arg.substr(5));
    } else if (arg == "--no-select-join") {
      knobs.use_select_join = false;
    } else if (arg.rfind("--buffer=", 0) == 0) {
      knobs.join_buffer_size = std::stoul(arg.substr(9));
    } else if (arg.rfind("--ways=", 0) == 0) {
      knobs.max_join_ways = std::stoi(arg.substr(7));
    } else if (arg[0] != '-') {
      query = arg;
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return 1;
    }
  }

  std::printf("Loading SSB (SF=%.2f) and building the base index pool...\n",
              sf);
  ssb::SsbConfig cfg;
  cfg.scale_factor = sf;
  auto data = ssb::Generate(cfg);
  if (!data.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 data.status().ToString().c_str());
    return 1;
  }
  std::printf("data pool: %.1f MiB across %zu tables, %zu base indexes\n\n",
              static_cast<double>((*data)->db.MemoryUsage()) / (1 << 20),
              (*data)->db.table_names().size(),
              (*data)->db.index_names().size());

  std::printf("query %s | select-join=%s | joinbuffer=%zu | max-ways=%s\n\n",
              query.c_str(), knobs.use_select_join ? "on" : "off",
              knobs.join_buffer_size,
              knobs.max_join_ways == 0
                  ? "multi"
                  : std::to_string(knobs.max_join_ways).c_str());

  if (auto spec = ssb::BuildQuerySpec(**data, query); spec.ok()) {
    auto explain = query::ExplainPlan((*data)->db, *spec, knobs);
    if (explain.ok()) {
      std::printf("--- generated plan ---\n%s\n", explain->c_str());
    }
  }

  PlanStats stats;
  auto result = ssb::RunQppt(**data, query, knobs, &stats);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("--- execution plan statistics (appendix A view) ---\n%s\n",
              stats.ToString().c_str());
  std::printf("--- result (%zu rows) ---\n%s", result->rows.size(),
              result->ToString(15).c_str());
  return 0;
}
