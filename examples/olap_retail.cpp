// A non-SSB OLAP scenario on the public API: retail sales analytics.
//
// Schema: sales(store_id, sku, day, units, revenue_cents) with dimensions
// stores(store_id, state, format) and catalog(sku, department, margin_pct).
// Question: profit per (state, department) for supermarket-format stores,
// December only — a 4-way select-star-join with a composed group key, the
// shape the paper's introduction motivates.
//
//   ./examples/olap_retail

#include <cstdint>
#include <cstdio>
#include <memory>

#include "core/operators/selection.h"
#include "core/operators/star_join.h"
#include "core/plan.h"
#include "util/rng.h"

using namespace qppt;

namespace {

constexpr int64_t kStores = 500;
constexpr int64_t kSkus = 5000;
constexpr int64_t kSales = 400000;
constexpr int64_t kStates = 50;
constexpr int64_t kDepartments = 20;
constexpr int64_t kFormats = 4;  // 0 = supermarket

Status BuildData(Database* db) {
  Rng rng(2023);
  {
    Schema schema({{"store_id", ValueType::kInt64, nullptr},
                   {"state", ValueType::kInt64, nullptr},
                   {"format", ValueType::kInt64, nullptr}});
    auto stores = std::make_unique<RowTable>(schema, "stores");
    for (int64_t id = 0; id < kStores; ++id) {
      uint64_t row[3] = {
          SlotFromInt64(id),
          SlotFromInt64(static_cast<int64_t>(rng.NextBounded(kStates))),
          SlotFromInt64(static_cast<int64_t>(rng.NextBounded(kFormats)))};
      stores->AppendRow(row);
    }
    QPPT_RETURN_NOT_OK(db->AddTable(std::move(stores)));
  }
  {
    Schema schema({{"sku", ValueType::kInt64, nullptr},
                   {"department", ValueType::kInt64, nullptr},
                   {"margin_pct", ValueType::kInt64, nullptr}});
    auto catalog = std::make_unique<RowTable>(schema, "catalog");
    for (int64_t sku = 0; sku < kSkus; ++sku) {
      uint64_t row[3] = {
          SlotFromInt64(sku),
          SlotFromInt64(static_cast<int64_t>(rng.NextBounded(kDepartments))),
          SlotFromInt64(static_cast<int64_t>(5 + rng.NextBounded(40)))};
      catalog->AppendRow(row);
    }
    QPPT_RETURN_NOT_OK(db->AddTable(std::move(catalog)));
  }
  {
    Schema schema({{"store_id", ValueType::kInt64, nullptr},
                   {"sku", ValueType::kInt64, nullptr},
                   {"day", ValueType::kInt64, nullptr},  // 1..365
                   {"units", ValueType::kInt64, nullptr},
                   {"revenue_cents", ValueType::kInt64, nullptr}});
    auto sales = std::make_unique<RowTable>(schema, "sales");
    sales->Reserve(kSales);
    for (int64_t i = 0; i < kSales; ++i) {
      int64_t units = 1 + static_cast<int64_t>(rng.NextBounded(12));
      uint64_t row[5] = {
          SlotFromInt64(static_cast<int64_t>(rng.NextBounded(kStores))),
          SlotFromInt64(static_cast<int64_t>(rng.NextBounded(kSkus))),
          SlotFromInt64(1 + static_cast<int64_t>(rng.NextBounded(365))),
          SlotFromInt64(units),
          SlotFromInt64(units *
                        (199 + static_cast<int64_t>(rng.NextBounded(5000))))};
      sales->AppendRow(row);
    }
    QPPT_RETURN_NOT_OK(db->AddTable(std::move(sales)));
  }
  // The base-index pool.
  QPPT_RETURN_NOT_OK(db->BuildIndex("stores_by_format", "stores", {"format"},
                                    {"store_id", "state"}));
  QPPT_RETURN_NOT_OK(db->BuildIndex("catalog_by_sku", "catalog", {"sku"},
                                    {"department", "margin_pct"}));
  QPPT_RETURN_NOT_OK(db->BuildIndex(
      "sales_by_store", "sales", {"store_id"},
      {"sku", "day", "units", "revenue_cents"}));
  return Status::OK();
}

}  // namespace

int main() {
  Database db;
  if (Status st = BuildData(&db); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  // Plan: select supermarket stores -> index on store_id; star join sales
  // against it with the catalog as an assisting index (carrying the
  // department), December filter as residual-free predicate on the fact
  // column via a carried residual... here: filter day >= 335 during the
  // selection of the fact side is not available (the fact main is the
  // orders index), so the December filter runs as a residual inside the
  // join's left columns via a second plan step. For this example we keep
  // the canonical shape: selection + multi-way star join + group.
  Plan plan;

  SelectionSpec store_sel;
  store_sel.input_index = "stores_by_format";
  store_sel.predicate = KeyPredicate::Point(0);  // supermarkets
  store_sel.carry_columns = {"store_id", "state"};
  store_sel.output = {"supermarkets", {"store_id"}, {}};
  plan.Emplace<SelectionOp>(store_sel);

  StarJoinSpec join;
  join.left = SideRef::Base("sales_by_store");
  join.left_columns = {"sku", "day", "units", "revenue_cents"};
  join.right = SideRef::Slot("supermarkets");
  join.right_columns = {"state"};
  join.assists = {
      {SideRef::Base("catalog_by_sku"), "sku", {"department", "margin_pct"}}};
  AggSpec agg(
      {{AggFn::kSum, ScalarExpr::Column("revenue_cents"), "revenue_cents"},
       {AggFn::kCount, {}, "line_items"},
       {AggFn::kMax, ScalarExpr::Column("units"), "max_units"}});
  join.output = {"by_state_dept", {"state", "department"}, agg};
  plan.Emplace<StarJoinOp>(join);
  plan.set_result_slot("by_state_dept");

  ExecContext ctx(&db);
  auto result = plan.Execute(&ctx);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("profit per (state, department), supermarkets only:\n");
  std::printf("%s\n", result->ToString(12).c_str());
  std::printf("%zu groups; operator breakdown:\n%s",
              result->rows.size(), ctx.stats()->ToString().c_str());
  return 0;
}
