// A non-SSB OLAP scenario on the public API: retail sales analytics.
//
// Schema: sales(store_id, sku, day, units, revenue_cents) with dimensions
// stores(store_id, state, format) and catalog(sku, department, margin_pct).
// Question: profit per (state, department) for supermarket-format stores,
// December only — a 4-way select-star-join with a composed group key, the
// shape the paper's introduction motivates.
//
//   ./examples/olap_retail

#include <cstdint>
#include <cstdio>
#include <memory>

#include "core/plan.h"
#include "core/query/planner.h"
#include "core/query/query_spec.h"
#include "util/rng.h"

using namespace qppt;

namespace {

constexpr int64_t kStores = 500;
constexpr int64_t kSkus = 5000;
constexpr int64_t kSales = 400000;
constexpr int64_t kStates = 50;
constexpr int64_t kDepartments = 20;
constexpr int64_t kFormats = 4;  // 0 = supermarket

Status BuildData(Database* db) {
  Rng rng(2023);
  {
    Schema schema({{"store_id", ValueType::kInt64, nullptr},
                   {"state", ValueType::kInt64, nullptr},
                   {"format", ValueType::kInt64, nullptr}});
    auto stores = std::make_unique<RowTable>(schema, "stores");
    for (int64_t id = 0; id < kStores; ++id) {
      uint64_t row[3] = {
          SlotFromInt64(id),
          SlotFromInt64(static_cast<int64_t>(rng.NextBounded(kStates))),
          SlotFromInt64(static_cast<int64_t>(rng.NextBounded(kFormats)))};
      stores->AppendRow(row);
    }
    QPPT_RETURN_NOT_OK(db->AddTable(std::move(stores)));
  }
  {
    Schema schema({{"sku", ValueType::kInt64, nullptr},
                   {"department", ValueType::kInt64, nullptr},
                   {"margin_pct", ValueType::kInt64, nullptr}});
    auto catalog = std::make_unique<RowTable>(schema, "catalog");
    for (int64_t sku = 0; sku < kSkus; ++sku) {
      uint64_t row[3] = {
          SlotFromInt64(sku),
          SlotFromInt64(static_cast<int64_t>(rng.NextBounded(kDepartments))),
          SlotFromInt64(static_cast<int64_t>(5 + rng.NextBounded(40)))};
      catalog->AppendRow(row);
    }
    QPPT_RETURN_NOT_OK(db->AddTable(std::move(catalog)));
  }
  {
    Schema schema({{"store_id", ValueType::kInt64, nullptr},
                   {"sku", ValueType::kInt64, nullptr},
                   {"day", ValueType::kInt64, nullptr},  // 1..365
                   {"units", ValueType::kInt64, nullptr},
                   {"revenue_cents", ValueType::kInt64, nullptr}});
    auto sales = std::make_unique<RowTable>(schema, "sales");
    sales->Reserve(kSales);
    for (int64_t i = 0; i < kSales; ++i) {
      int64_t units = 1 + static_cast<int64_t>(rng.NextBounded(12));
      uint64_t row[5] = {
          SlotFromInt64(static_cast<int64_t>(rng.NextBounded(kStores))),
          SlotFromInt64(static_cast<int64_t>(rng.NextBounded(kSkus))),
          SlotFromInt64(1 + static_cast<int64_t>(rng.NextBounded(365))),
          SlotFromInt64(units),
          SlotFromInt64(units *
                        (199 + static_cast<int64_t>(rng.NextBounded(5000))))};
      sales->AppendRow(row);
    }
    QPPT_RETURN_NOT_OK(db->AddTable(std::move(sales)));
  }
  // The base-index pool.
  QPPT_RETURN_NOT_OK(db->BuildIndex("stores_by_format", "stores", {"format"},
                                    {"store_id", "state"}));
  QPPT_RETURN_NOT_OK(db->BuildIndex("catalog_by_sku", "catalog", {"sku"},
                                    {"department", "margin_pct"}));
  QPPT_RETURN_NOT_OK(db->BuildIndex(
      "sales_by_store", "sales", {"store_id"},
      {"sku", "day", "units", "revenue_cents"}));
  return Status::OK();
}

}  // namespace

int main() {
  Database db;
  if (Status st = BuildData(&db); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  // The query, declaratively: supermarket stores are the filtered star
  // dimension (main), the catalog an unfiltered probe dimension (the
  // planner composes it in as an assisting index), grouped per
  // (state, department). The planner emits the canonical QPPT shape:
  // selection + multi-way star-join-group.
  query::QueryBuilder b("retail.profit_by_state_dept");
  b.From("sales")
      .FactIndex("sales_by_store")
      .FactColumns({"sku", "day", "units", "revenue_cents"});
  b.Dim("supermarkets")
      .Select("stores_by_format", KeyPredicate::Point(0))
      .Key("store_id")
      .ProbeFrom("store_id")
      .Carry({"state"})
      .Slot("supermarkets");
  b.Dim("catalog")
      .Probe("catalog_by_sku")
      .ProbeFrom("sku")
      .Carry({"department", "margin_pct"});
  b.GroupBy({"state", "department"})
      .Aggregate(AggFn::kSum, ScalarExpr::Column("revenue_cents"),
                 "revenue_cents")
      .Aggregate(AggFn::kCount, {}, "line_items")
      .Aggregate(AggFn::kMax, ScalarExpr::Column("units"), "max_units")
      .ResultSlot("by_state_dept");
  query::QuerySpec spec = std::move(b).Build();

  auto explain = query::ExplainPlan(db, spec, PlanKnobs{});
  if (explain.ok()) std::printf("%s\n", explain->c_str());

  auto plan = query::PlanQuery(db, spec, PlanKnobs{});
  if (!plan.ok()) {
    std::fprintf(stderr, "planning failed: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }
  ExecContext ctx(&db);
  auto result = plan->Execute(&ctx);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("profit per (state, department), supermarkets only:\n");
  std::printf("%s\n", result->ToString(12).c_str());
  std::printf("%zu groups; operator breakdown:\n%s",
              result->rows.size(), ctx.stats()->ToString().c_str());
  return 0;
}
