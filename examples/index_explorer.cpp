// Index structures up close: the §2 substrate without the query engine.
//
// Inserts the same key set into a generalized prefix tree (at several k'
// settings), a KISS-Tree (flat and bitmask-compressed), and the two
// hash-table baselines; reports build time, point/batched lookup time,
// memory, and shows an order-preserving range scan — the property hash
// tables cannot offer.
//
//   ./examples/index_explorer [num_keys]

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/stats.h"
#include "index/chained_hash_table.h"
#include "index/key_encoder.h"
#include "index/kiss_tree.h"
#include "index/open_hash_table.h"
#include "index/prefix_tree.h"
#include "util/rng.h"

using namespace qppt;

int main(int argc, char** argv) {
  size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : (1u << 20);
  Rng rng(1);
  std::vector<uint32_t> keys(n);
  for (auto& k : keys) k = static_cast<uint32_t>(rng.NextBounded(n));

  std::printf("%zu upserts of keys from a dense range, then %zu lookups\n\n",
              n, n);
  std::printf("%-26s %12s %12s %12s\n", "structure", "build[ms]",
              "lookup[ms]", "mem[MiB]");

  auto report = [](const char* name, double build, double lookup,
                   size_t mem) {
    std::printf("%-26s %12.1f %12.1f %12.1f\n", name, build, lookup,
                static_cast<double>(mem) / (1 << 20));
  };

  for (size_t kprime : {2, 4, 8}) {
    Timer t;
    PrefixTree tree({.key_len = 4, .kprime = kprime});
    KeyBuf buf;
    for (uint32_t k : keys) {
      buf.clear();
      buf.AppendU32(k);
      tree.Upsert(buf.data(), k);
    }
    double build = t.ElapsedMs();
    t.Restart();
    uint64_t sum = 0;
    for (uint32_t k : keys) {
      buf.clear();
      buf.AppendU32(k);
      sum += tree.Lookup(buf.data())->first();
    }
    double lookup = t.ElapsedMs();
    std::string name = "prefix tree k'=" + std::to_string(kprime);
    report(name.c_str(), build, lookup, tree.MemoryUsage());
    if (sum == 42) std::printf("!");
  }

  for (bool compress : {false, true}) {
    KissTree::Config cfg;
    cfg.compress = compress;
    Timer t;
    KissTree tree(cfg);
    for (uint32_t k : keys) tree.Upsert(k, k);
    double build = t.ElapsedMs();
    t.Restart();
    uint64_t sum = 0;
    KissTree::ValueRef ref;
    for (uint32_t k : keys) {
      tree.Lookup(k, &ref);
      sum += ref.front();
    }
    double lookup = t.ElapsedMs();
    report(compress ? "KISS-Tree (compressed)" : "KISS-Tree (flat)", build,
           lookup, tree.MemoryUsage());
    if (sum == 42) std::printf("!");
  }

  {
    Timer t;
    KissTree tree;
    std::vector<KissTree::UpsertJob> jobs;
    constexpr size_t kBatch = 512;
    for (size_t i = 0; i < keys.size(); ++i) {
      jobs.push_back({keys[i], keys[i]});
      if (jobs.size() == kBatch || i + 1 == keys.size()) {
        tree.BatchUpsert(jobs);
        jobs.clear();
      }
    }
    double build = t.ElapsedMs();
    t.Restart();
    std::vector<KissTree::LookupJob> lookups(kBatch);
    uint64_t sum = 0;
    size_t i = 0;
    while (i < keys.size()) {
      size_t len = std::min(kBatch, keys.size() - i);
      for (size_t j = 0; j < len; ++j) lookups[j].key = keys[i + j];
      tree.BatchLookup(std::span<KissTree::LookupJob>(lookups.data(), len));
      for (size_t j = 0; j < len; ++j) sum += lookups[j].values.front();
      i += len;
    }
    double lookup = t.ElapsedMs();
    report("KISS-Tree (batched, 512)", build, lookup, tree.MemoryUsage());
    if (sum == 42) std::printf("!");
  }

  {
    Timer t;
    ChainedHashTable table;
    for (uint32_t k : keys) table.Upsert(k, k);
    double build = t.ElapsedMs();
    t.Restart();
    uint64_t sum = 0;
    for (uint32_t k : keys) sum += *table.Find(k);
    double lookup = t.ElapsedMs();
    report("chained hash (GLib-like)", build, lookup, table.MemoryUsage());
    if (sum == 42) std::printf("!");
  }
  {
    Timer t;
    OpenHashTable table;
    for (uint32_t k : keys) table.Upsert(k, k);
    double build = t.ElapsedMs();
    t.Restart();
    uint64_t sum = 0;
    for (uint32_t k : keys) sum += *table.Find(k);
    double lookup = t.ElapsedMs();
    report("open-addr hash (Boost-like)", build, lookup,
           table.MemoryUsage());
    if (sum == 42) std::printf("!");
  }

  // Order preservation: range scan over the trie, impossible on a hash
  // table without sorting.
  std::printf("\nrange scan [100, 120] on the KISS-Tree (sorted for free):\n");
  KissTree tree;
  for (uint32_t k : keys) tree.Upsert(k, k);
  tree.ScanRange(100, 120, [](uint32_t key, const KissTree::ValueRef&) {
    std::printf("  %u", key);
  });
  std::printf("\n");
  return 0;
}
